// Tests for the Spatha SpMM kernels and configuration machinery.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {
namespace {

constexpr float kTol = 2e-2f;

VnmMatrix random_vnm(std::size_t rows, std::size_t cols, VnmConfig cfg,
                     std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

TEST(SpmmVnm, ReferenceMatchesDenseGemm) {
  Rng rng(1);
  const VnmConfig cfg{4, 2, 8};
  const VnmMatrix a = random_vnm(16, 32, cfg, 2);
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  const FloatMatrix ref = gemm_dense(a.to_dense(), b);
  EXPECT_LT(rel_fro_error(spmm_vnm_reference(a, b), ref), 1e-5f);
}

TEST(SpmmVnm, TiledMatchesReference) {
  Rng rng(3);
  const VnmConfig cfg{8, 2, 10};
  const VnmMatrix a = random_vnm(32, 80, cfg, 4);
  const HalfMatrix b = random_half_matrix(80, 40, rng);
  EXPECT_LT(rel_fro_error(spmm_vnm(a, b), spmm_vnm_reference(a, b)), 1e-5f);
}

TEST(SpmmVnm, HeuristicConfigPasses) {
  Rng rng(5);
  const VnmConfig fmt{16, 2, 8};
  const VnmMatrix a = random_vnm(64, 128, fmt, 6);
  const HalfMatrix b = random_half_matrix(128, 100, rng);
  const SpmmConfig cfg = select_config(fmt, 64, 128, 100);
  EXPECT_NO_THROW(validate(cfg, fmt, 64, 128, 100));
  EXPECT_LT(rel_fro_error(spmm_vnm(a, b, cfg), spmm_vnm_reference(a, b)),
            1e-5f);
}

TEST(SpmmVnm, NarrowOutputAndRaggedTiles) {
  // C not divisible by block_c exercises the tail tile path.
  Rng rng(7);
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix a = random_vnm(8, 64, fmt, 8);
  const HalfMatrix b = random_half_matrix(64, 13, rng);
  SpmmConfig cfg;
  cfg.block_c = 5;
  cfg.block_k = 16;
  EXPECT_LT(rel_fro_error(spmm_vnm(a, b, cfg), spmm_vnm_reference(a, b)),
            1e-5f);
}

TEST(SpmmVnm, MmaPathMatchesDirect) {
  // Functional fidelity: the gathered-2:4 mapping through genuine
  // m16n8k32 mma.sp instructions gives the same product (Fig. 4).
  Rng rng(9);
  const VnmConfig fmt{16, 2, 8};
  const VnmMatrix a = random_vnm(32, 64, fmt, 10);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  EXPECT_LT(rel_fro_error(spmm_vnm_mma(a, b), spmm_vnm(a, b)), kTol);
}

TEST(SpmmVnm, MmaPathShapeChecks) {
  Rng rng(11);
  const VnmMatrix a = random_vnm(8, 64, {8, 2, 8}, 12);  // V=8 not /16
  EXPECT_THROW(spmm_vnm_mma(a, HalfMatrix(64, 16)), Error);
}

TEST(SpmmVnm, FixedColumnLocMatchesWhenSelectionIsIdentity) {
  // ColumnLocMode::kFixed is a timing ablation; functionally it equals
  // the real kernel only when the selected columns are 0..3 everywhere.
  Rng rng(13);
  HalfMatrix dense(8, 16);
  // Populate only the first 4 columns of each group of 8.
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t g = 0; g < 2; ++g)
      for (std::size_t c = 0; c < 4; ++c)
        dense(r, g * 8 + c) = half_t(rng.normal());
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(dense, fmt);
  const HalfMatrix b = random_half_matrix(16, 8, rng);
  SpmmConfig cfg = select_config(fmt, 8, 16, 8);
  cfg.column_loc = ColumnLocMode::kFixed;
  EXPECT_LT(rel_fro_error(spmm_vnm(a, b, cfg), spmm_vnm_reference(a, b)),
            1e-5f);
}

TEST(SpmmTransposed, MatchesDenseTransposedGemm) {
  Rng rng(41);
  const VnmConfig fmt{8, 2, 10};
  const VnmMatrix a = random_vnm(32, 40, fmt, 42);
  const HalfMatrix b = random_half_matrix(32, 12, rng);
  const FloatMatrix c = spmm_vnm_transposed(a, b);
  const FloatMatrix ref = gemm_dense(transpose(a.to_dense()), b);
  EXPECT_EQ(c.rows(), 40u);
  EXPECT_EQ(c.cols(), 12u);
  EXPECT_LT(rel_fro_error(c, ref), 1e-5f);
}

TEST(SpmmTransposed, BackwardOfForward) {
  // dL/dx = W^T dL/dy reproduces the dense backward of a sparse layer.
  Rng rng(43);
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix w = random_vnm(16, 32, fmt, 44);
  const HalfMatrix grad_y = random_half_matrix(16, 6, rng);
  const FloatMatrix grad_x = spmm_vnm_transposed(w, grad_y);
  const FloatMatrix ref = gemm_dense(transpose(w.to_dense()), grad_y);
  EXPECT_LT(rel_fro_error(grad_x, ref), 1e-5f);
}

TEST(SpmmTransposed, ShapeMismatchThrows) {
  const VnmMatrix a = random_vnm(16, 32, {4, 2, 8}, 45);
  EXPECT_THROW(spmm_vnm_transposed(a, HalfMatrix(32, 4)), Error);
}

TEST(SpmmTransposed, SingleBlockRowPath) {
  Rng rng(46);
  const VnmConfig fmt{16, 2, 8};
  const VnmMatrix a = random_vnm(16, 16, fmt, 47);  // one block row
  const HalfMatrix b = random_half_matrix(16, 8, rng);
  EXPECT_LT(rel_fro_error(spmm_vnm_transposed(a, b),
                          gemm_dense(transpose(a.to_dense()), b)),
            1e-5f);
}

TEST(SpmmConfig, ValidationRules) {
  const VnmConfig fmt{16, 2, 8};
  SpmmConfig cfg;
  EXPECT_NO_THROW(validate(cfg, fmt, 64, 512, 64));
  SpmmConfig bad = cfg;
  bad.block_k = 100;  // not a multiple of M=8
  EXPECT_THROW(validate(bad, fmt, 64, 512, 64), Error);
  bad = cfg;
  bad.mma_k = 64;
  EXPECT_THROW(validate(bad, fmt, 64, 512, 64), Error);
  bad = cfg;
  bad.batch_size = 0;
  EXPECT_THROW(validate(bad, fmt, 64, 512, 64), Error);
  EXPECT_THROW(validate(cfg, fmt, 60, 512, 64), Error);  // rows % V
}

TEST(SpmmConfig, SelectConfigAlwaysValid) {
  for (std::size_t v : {32u, 64u, 128u})
    for (std::size_t m : {8u, 10u, 20u, 40u, 100u}) {
      const VnmConfig fmt{v, 2, m};
      const std::size_t rows = v * 8, cols = m * 32, bcols = 4096;
      const SpmmConfig cfg = select_config(fmt, rows, cols, bcols);
      EXPECT_NO_THROW(validate(cfg, fmt, rows, cols, bcols))
          << v << ":2:" << m;
    }
}

TEST(SpmmConfig, Describe) {
  const SpmmConfig cfg;
  const std::string s = cfg.describe();
  EXPECT_NE(s.find("m16n8k32"), std::string::npos);
  EXPECT_NE(s.find("128b"), std::string::npos);
}

TEST(SpmmVnm, SingleColumnOutput) {
  Rng rng(51);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 52);
  const HalfMatrix b = random_half_matrix(16, 1, rng);
  EXPECT_LT(rel_fro_error(spmm_vnm(a, b), spmm_vnm_reference(a, b)), 1e-5f);
}

TEST(SpmmVnm, BlockKLargerThanProblem) {
  // BSk exceeding K collapses to one panel; results unchanged.
  Rng rng(53);
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix a = random_vnm(8, 16, fmt, 54);
  const HalfMatrix b = random_half_matrix(16, 8, rng);
  SpmmConfig cfg;
  cfg.block_k = 1024;  // >> K = 16
  cfg.block_c = 8;     // = C
  EXPECT_LT(rel_fro_error(spmm_vnm(a, b, cfg), spmm_vnm_reference(a, b)),
            1e-5f);
}

TEST(SpmmVnm, ZeroOperandGivesZeroOutput) {
  const VnmMatrix a = VnmMatrix::compress(HalfMatrix(8, 16), {4, 2, 8});
  Rng rng(55);
  const HalfMatrix b = random_half_matrix(16, 8, rng);
  const FloatMatrix c = spmm_vnm(a, b);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(SpmmVnm, FlopsHelper) {
  const VnmMatrix a = random_vnm(8, 32, {4, 2, 8}, 20);
  // nnz = 8 * (32/8) * 2 = 64; flops = 2 * 64 * C.
  EXPECT_DOUBLE_EQ(spmm_flops(a, 10), 2.0 * 64 * 10);
}

// Property sweep across the paper's format space: the tiled kernel, the
// reference kernel, and the dense GEMM of the decompressed matrix agree.
class SpathaSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SpathaSweep, KernelEquivalence) {
  const auto [v, m, c] = GetParam();
  const VnmConfig fmt{std::size_t(v), 2, std::size_t(m)};
  const std::size_t rows = fmt.v * 2;
  const std::size_t cols = fmt.m * 8;
  const VnmMatrix a = random_vnm(rows, cols, fmt, 31 + std::size_t(v + m));
  Rng rng(100 + std::size_t(m));
  const HalfMatrix b = random_half_matrix(cols, std::size_t(c), rng);

  const FloatMatrix tiled = spmm_vnm(a, b);
  EXPECT_LT(rel_fro_error(tiled, spmm_vnm_reference(a, b)), 1e-5f);
  EXPECT_LT(rel_fro_error(tiled, gemm_dense(a.to_dense(), b)), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, SpathaSweep,
    ::testing::Values(std::make_tuple(1, 8, 16), std::make_tuple(16, 8, 32),
                      std::make_tuple(32, 10, 64), std::make_tuple(64, 20, 24),
                      std::make_tuple(8, 40, 16), std::make_tuple(4, 100, 8),
                      std::make_tuple(16, 4, 33), std::make_tuple(8, 16, 7)));

}  // namespace
}  // namespace venom::spatha
