// Tests for the analytical GPU performance model: every acceptance
// criterion in DESIGN.md §5 that the figure benches rely on is asserted
// here so regressions in the calibration are caught by ctest.
#include <gtest/gtest.h>

#include "gpumodel/autotune.hpp"
#include "gpumodel/kernel_models.hpp"
#include "transformer/latency_model.hpp"

namespace venom::gpumodel {
namespace {

const DeviceSpec& dev() { return rtx3090(); }

double spatha_speedup(GemmShape g, VnmConfig fmt) {
  return speedup_vs_cublas(dev(), g, spatha_spmm(dev(), g, fmt));
}

TEST(Device, SpecSanity) {
  EXPECT_EQ(dev().sm_count, 82u);
  EXPECT_DOUBLE_EQ(dev().fp16_tc_sparse, 2.0 * dev().fp16_tc_dense);
  EXPECT_GT(dev().l2_bw, dev().dram_bw);
  EXPECT_GT(dev().smem_bw, dev().l2_bw);
}

TEST(KernelCost, TotalComposition) {
  KernelCost c;
  c.compute_s = 3.0;
  c.memory_s = 1.0;
  c.output_s = 0.5;
  c.overhead_s = 0.25;
  EXPECT_DOUBLE_EQ(c.total(1.0), 3.75);      // overlap: max + tail
  EXPECT_DOUBLE_EQ(c.total(0.0), 4.75);      // serialized
}

TEST(Cublas, FlatEfficiencyInK) {
  // Fig. 12: cuBLAS TFLOPS are nearly flat across K.
  const GemmShape small{1024, 768, 4096};
  const GemmShape large{1024, 12288, 4096};
  const double t_small = tflops(cublas_gemm(dev(), small), small.flops());
  const double t_large = tflops(cublas_gemm(dev(), large), large.flops());
  EXPECT_GT(t_small, 25.0);
  EXPECT_LT(t_large, 50.0);
  EXPECT_LT(t_large / t_small, 1.5);
}

TEST(Spatha, SpeedupBoundedByTheoreticalCap) {
  // Cap = M/2 for N=2 (the paper's "theoretical peak" per sparsity).
  for (std::size_t m : {10u, 20u, 40u, 100u}) {
    const GemmShape g{1024, 12288, 4096};
    const double s = spatha_speedup(g, {128, 2, m});
    EXPECT_LT(s, double(m) / 2.0) << "m=" << m;
    EXPECT_GT(s, 0.55 * double(m) / 2.0) << "m=" << m;
  }
}

TEST(Spatha, Fig9HeadlineNumbers) {
  // 1024 x 12288 x 4096, V=128: ~4.5x @2:10, ~8.5x @2:20, ~17.5x @2:40,
  // ~37x @2:100 (paper Fig. 9, rightmost points). Allow +-25%.
  const GemmShape g{1024, 12288, 4096};
  EXPECT_NEAR(spatha_speedup(g, {128, 2, 10}), 4.5, 1.2);
  EXPECT_NEAR(spatha_speedup(g, {128, 2, 20}), 8.5, 2.2);
  EXPECT_NEAR(spatha_speedup(g, {128, 2, 40}), 17.5, 4.5);
  EXPECT_NEAR(spatha_speedup(g, {128, 2, 100}), 37.0, 10.0);
}

TEST(Spatha, SpeedupGrowsWithK) {
  const VnmConfig fmt{128, 2, 20};
  double prev = 0.0;
  for (std::size_t k : {768u, 3072u, 6144u, 12288u}) {
    const double s = spatha_speedup({1024, k, 4096}, fmt);
    EXPECT_GT(s, prev) << "k=" << k;
    prev = s;
  }
}

TEST(Spatha, ColumnLocOverheadSmallAndLargestAtExtremeSparsity) {
  const GemmShape g{1024, 12288, 4096};
  const auto overhead_ratio = [&](std::size_t m) {
    const VnmConfig fmt{128, 2, m};
    auto cfg = spatha::select_config(fmt, g.r, g.k, g.c);
    const double with = spatha_spmm(dev(), g, fmt, cfg).total();
    cfg.column_loc = spatha::ColumnLocMode::kFixed;
    const double without = spatha_spmm(dev(), g, fmt, cfg).total();
    return with / without;
  };
  const double r10 = overhead_ratio(10);
  const double r100 = overhead_ratio(100);
  EXPECT_GT(r10, 1.0);
  EXPECT_LT(r10, 1.15);   // negligible at practical sparsities
  EXPECT_GT(r100, r10);   // more visible at 2:100
  EXPECT_LT(r100, 1.6);
}

TEST(Spatha, WideStoresHelpMostAtHighSparsity) {
  // Fig. 10: up to ~2x between 32- and 128-bit stores at 1024x4096x4096.
  const GemmShape g{1024, 4096, 4096};
  const auto ratio = [&](std::size_t m) {
    const VnmConfig fmt{128, 2, m};
    auto cfg = spatha::select_config(fmt, g.r, g.k, g.c);
    cfg.store_width = spatha::StoreWidth::k128bit;
    const double fast = spatha_spmm(dev(), g, fmt, cfg).total();
    cfg.store_width = spatha::StoreWidth::k32bit;
    const double slow = spatha_spmm(dev(), g, fmt, cfg).total();
    return slow / fast;
  };
  EXPECT_GT(ratio(100), 1.5);
  EXPECT_LT(ratio(100), 2.6);
  EXPECT_GT(ratio(8), 1.0);
  EXPECT_LT(ratio(8), ratio(100));
}

TEST(Spatha, StoreWidthEffectAttenuatedOnGpt3SizedGemm) {
  // Paper §4.1: for 36864 x 12288 x 4096 the output phase is a smaller
  // fraction, so the 128-bit benefit shrinks.
  const auto ratio = [&](GemmShape g) {
    const VnmConfig fmt{128, 2, 100};
    auto cfg = spatha::select_config(fmt, g.r, g.k, g.c);
    cfg.store_width = spatha::StoreWidth::k128bit;
    const double fast = spatha_spmm(dev(), g, fmt, cfg).total();
    cfg.store_width = spatha::StoreWidth::k32bit;
    return spatha_spmm(dev(), g, fmt, cfg).total() / fast;
  };
  EXPECT_LT(ratio({36864, 12288, 4096}), ratio({1024, 4096, 4096}));
}

TEST(Spatha, LargerVIsFaster) {
  const GemmShape g{1024, 4096, 4096};
  double prev = 1e9;
  for (std::size_t v : {32u, 64u, 128u}) {
    const double t = spatha_spmm(dev(), g, {v, 2, 10}).total();
    EXPECT_LT(t, prev) << "v=" << v;
    prev = t;
  }
}

TEST(Cusparselt, Fig12Relationships) {
  // Spatha beats cuSparseLt on small K (up to ~1.38x), matches at large K;
  // both stay below the 2x theoretical cap vs cuBLAS.
  const VnmConfig fmt24{128, 2, 4};
  const GemmShape small{768, 768, 4096};
  const GemmShape large{1024, 12288, 4096};

  const double sp_small = spatha_spmm(dev(), small, fmt24).total();
  const double lt_small = cusparselt_spmm(dev(), small).total();
  EXPECT_GT(lt_small / sp_small, 1.1);
  EXPECT_LT(lt_small / sp_small, 1.6);

  const double sp_large = spatha_spmm(dev(), large, fmt24).total();
  const double lt_large = cusparselt_spmm(dev(), large).total();
  EXPECT_NEAR(lt_large / sp_large, 1.0, 0.12);

  EXPECT_LT(speedup_vs_cublas(dev(), large,
                              spatha_spmm(dev(), large, fmt24)),
            2.0);
  EXPECT_GT(speedup_vs_cublas(dev(), large,
                              spatha_spmm(dev(), large, fmt24)),
            1.5);
}

TEST(Sputnik, OnlyWinsAtHighSparsity) {
  // Fig. 13: CUDA-core libraries beat cuBLAS only >= ~90% on LLM-sized
  // matrices and cap out around ~3x.
  const GemmShape g{1024, 1024, 8192};
  EXPECT_LT(speedup_vs_cublas(dev(), g, sputnik_spmm(dev(), g, 0.50)), 1.0);
  EXPECT_LT(speedup_vs_cublas(dev(), g, sputnik_spmm(dev(), g, 0.25)), 1.0);
  const double s95 = speedup_vs_cublas(dev(), g, sputnik_spmm(dev(), g, 0.05));
  EXPECT_GT(s95, 1.0);
  EXPECT_LT(s95, 5.0);
}

TEST(Clasp, BetweenSputnikAndSpatha) {
  const GemmShape g{1024, 1024, 8192};
  const double clasp90 =
      speedup_vs_cublas(dev(), g, clasp_spmm(dev(), g, 0.10, 8));
  const double sputnik90 =
      speedup_vs_cublas(dev(), g, sputnik_spmm(dev(), g, 0.10));
  const double spatha90 = spatha_speedup(g, {128, 2, 20});
  EXPECT_GT(clasp90, sputnik90);
  EXPECT_GT(spatha90, clasp90);
  EXPECT_LT(clasp90, 5.0);
  // Longer vectors are TC-friendlier.
  EXPECT_LT(clasp_spmm(dev(), g, 0.10, 8).total(),
            clasp_spmm(dev(), g, 0.10, 2).total());
}

TEST(Spatha, TwoXAtFiftyPercentEnablesHighSparsityWins) {
  // The paper's argument: reaching ~2x at 2:4 is what makes 27x at 98%
  // possible on BERT-sized matrices.
  const GemmShape bert{1024, 4096, 8192};
  EXPECT_GT(spatha_speedup(bert, {128, 2, 4}), 1.5);
  EXPECT_GT(spatha_speedup(bert, {128, 2, 100}), 20.0);
}

TEST(Autotune, RankingIsSortedAndValid) {
  const GemmShape g{1024, 4000, 4096};  // K divisible by M
  const VnmConfig fmt{128, 2, 10};
  const auto ranked = enumerate_configs(dev(), g, fmt);
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].total_s(), ranked[i].total_s());
  for (const auto& r : ranked)
    EXPECT_NO_THROW(spatha::validate(r.config, fmt, g.r, g.k, g.c));
}

TEST(Autotune, BestBeatsOrMatchesHeuristic) {
  for (std::size_t m : {8u, 20u, 100u}) {
    const GemmShape g{1024, 12288 - 12288 % m, 4096};
    const VnmConfig fmt{128, 2, m};
    const double heuristic = spatha_spmm(dev(), g, fmt).total();
    const double tuned = autotune(dev(), g, fmt).total_s();
    EXPECT_LE(tuned, heuristic * 1.0001) << "m=" << m;
  }
}

TEST(Autotune, RespectsSearchSpace) {
  const GemmShape g{256, 1024, 512};
  const VnmConfig fmt{64, 2, 8};
  TuneSpace space;
  space.block_c = {32};
  space.batch_sizes = {1};
  const auto best = autotune(dev(), g, fmt, space);
  EXPECT_EQ(best.config.block_c, 32u);
  EXPECT_EQ(best.config.batch_size, 1u);
}

TEST(Autotune, ThrowsWhenNothingValidates) {
  const GemmShape g{256, 1024, 512};
  const VnmConfig fmt{64, 2, 8};
  TuneSpace space;
  space.block_c = {4096};  // exceeds C -> every candidate skipped
  EXPECT_THROW(autotune(dev(), g, fmt, space), venom::Error);
}

TEST(Elementwise, BandwidthBound) {
  const double t = elementwise(dev(), 1e9).total();
  EXPECT_GT(t, 1e9 / dev().dram_bw);          // cannot beat DRAM
  EXPECT_LT(t, 3.0 * 1e9 / dev().dram_bw);    // but close to it
}

TEST(LatencyModel, Fig15GemmShareGrowsWithModelSize) {
  using namespace venom::transformer;
  const auto share = [&](const ModelConfig& cfg, std::size_t batch) {
    const auto lat = model_encoder_latency(dev(), cfg, batch, std::nullopt, 1);
    return lat.gemm_s / lat.total();
  };
  const double bert = share(bert_large(), 32);
  const double gpt3 = share(gpt3_175b(), 1);
  EXPECT_GT(gpt3, bert);
  EXPECT_GT(gpt3, 0.6);  // paper: ~80% of GPT-3 time is GEMMs
}

TEST(LatencyModel, Fig15GemmTimeReductionAt232) {
  using namespace venom::transformer;
  const auto cfg = gpt3_175b();
  const double dense = model_gemm_time(dev(), cfg, 1, std::nullopt, 1);
  const double sparse =
      model_gemm_time(dev(), cfg, 1, VnmConfig{64, 2, 32}, 1);
  const double reduction = dense / sparse;
  EXPECT_GT(reduction, 8.0);    // paper: ~11x
  EXPECT_LT(reduction, 16.0);   // bounded by cap M/2 = 16
}

TEST(LatencyModel, EndToEndSpeedupOrdering) {
  using namespace venom::transformer;
  // End-to-end speedup grows with sparsity and with GEMM share.
  const auto e2e = [&](const ModelConfig& cfg, std::size_t batch,
                       std::size_t m) {
    const double dense =
        model_encoder_latency(dev(), cfg, batch, std::nullopt, 1).total();
    const double sparse =
        model_encoder_latency(dev(), cfg, batch, VnmConfig{64, 2, m}, 1)
            .total();
    return dense / sparse;
  };
  EXPECT_LT(e2e(bert_large(), 32, 8), e2e(bert_large(), 32, 32));
  EXPECT_GT(e2e(gpt3_175b(), 1, 32), 2.5);  // paper: up to 3.2x
  EXPECT_GT(e2e(gpt3_175b(), 1, 32), e2e(bert_large(), 32, 32));
}

}  // namespace
}  // namespace venom::gpumodel
