// Sparse backward pass, end to end: the ops-layer dispatch of the
// transposed SpMM / masked SDDMM, finite-difference checks of the
// transformer backward (MHA, encoder layer, encoder stack), and the
// fine-tuning loop's acceptance bar (>= 50% of the post-prune loss
// recovered on the synthetic regression task).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "ops/ops.hpp"
#include "pruning/finetune.hpp"
#include "spatha/sddmm.hpp"
#include "spatha/spmm.hpp"
#include "transformer/encoder.hpp"
#include "workloads/generators.hpp"

namespace venom {
namespace {

using transformer::Encoder;
using transformer::EncoderLayer;
using transformer::EncoderLayerGrads;
using transformer::Linear;
using transformer::MhaGrads;
using transformer::ModelConfig;
using transformer::MultiHeadAttention;

double inner(const FloatMatrix& g, const FloatMatrix& d) {
  double acc = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i)
    acc += double(g.flat()[i]) * double(d.flat()[i]);
  return acc;
}

/// 0.5 * ||y - t||^2 with fp16 y, accumulated in double.
double half_loss(const HalfMatrix& y, const FloatMatrix& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = double(y.flat()[i].to_float()) - double(t.flat()[i]);
    acc += 0.5 * d * d;
  }
  return acc;
}

FloatMatrix loss_grad(const HalfMatrix& y, const FloatMatrix& t) {
  FloatMatrix g(y.rows(), y.cols());
  for (std::size_t i = 0; i < y.size(); ++i)
    g.flat()[i] = y.flat()[i].to_float() - t.flat()[i];
  return g;
}

/// x +/- h*dir rounded to fp16 (the actually-applied perturbation), and
/// the effective fp32 delta between the two — directional FD uses the
/// rounded operands so fp16 quantization cannot masquerade as gradient
/// error.
struct Perturbed {
  HalfMatrix plus, minus;
  FloatMatrix delta;  // plus - minus, exact
};

Perturbed perturb(const HalfMatrix& x, const FloatMatrix& dir, float h) {
  Perturbed p{HalfMatrix(x.rows(), x.cols()), HalfMatrix(x.rows(), x.cols()),
              FloatMatrix(x.rows(), x.cols())};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.flat()[i].to_float();
    p.plus.flat()[i] = half_t(v + h * dir.flat()[i]);
    p.minus.flat()[i] = half_t(v - h * dir.flat()[i]);
    p.delta.flat()[i] =
        p.plus.flat()[i].to_float() - p.minus.flat()[i].to_float();
  }
  return p;
}

FloatMatrix random_direction(std::size_t rows, std::size_t cols, Rng& rng) {
  FloatMatrix d(rows, cols);
  for (auto& v : d.flat()) v = rng.normal();
  return d;
}

/// Aggregate directional FD check: RMS disagreement between the FD and
/// analytic directional derivatives over `dirs` random directions,
/// normalized by the analytic RMS. Robust to single directions whose
/// derivative lands near the fp16 forward's noise floor.
template <typename ForwardFn>
double directional_rel_err(ForwardFn&& forward, const FloatMatrix& grad_x,
                           const HalfMatrix& x, const FloatMatrix& t,
                           Rng& rng, int dirs = 6, float h = 0.05f) {
  double num = 0.0, den = 0.0;
  for (int i = 0; i < dirs; ++i) {
    const FloatMatrix dir = random_direction(x.rows(), x.cols(), rng);
    const Perturbed p = perturb(x, dir, h);
    const double fd = half_loss(forward(p.plus), t) -
                      half_loss(forward(p.minus), t);
    const double an = inner(grad_x, p.delta);
    num += (fd - an) * (fd - an);
    den += an * an;
  }
  return std::sqrt(num / std::max(den, 1e-12));
}

// ------------------------------------------------- ops-layer dispatch

TEST(BackwardOps, TransposedScalarOverrideMatchesFast) {
  Rng rng = Rng::seeded("backward-ops", 1);
  const VnmConfig fmt{8, 2, 10};
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(
      random_half_matrix(32, 40, rng, 0.1f), fmt);
  const HalfMatrix b = random_half_matrix(32, 13, rng, 0.1f);

  const FloatMatrix fast =
      ops::matmul_transposed(ops::MatmulArgs::make_transposed(a, b));
  ops::ScopedBackend scoped("vnm-t-scalar");
  const FloatMatrix oracle =
      ops::matmul_transposed(ops::MatmulArgs::make_transposed(a, b));
  EXPECT_LT(rel_fro_error(fast, oracle), 1e-5f);
  EXPECT_LT(rel_fro_error(oracle,
                          gemm_dense(transpose(a.to_dense()), b)),
            1e-5f);
}

TEST(BackwardOps, SddmmScalarOverrideMatchesFast) {
  Rng rng = Rng::seeded("backward-ops", 2);
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix s = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 32, rng, 0.1f), fmt);
  const HalfMatrix a = random_half_matrix(16, 12, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(12, 32, rng, 0.1f);

  const VnmMatrix fast = ops::sddmm(ops::MatmulArgs::make_sddmm(s, a, b));
  ops::ScopedBackend scoped("sddmm-scalar");
  const VnmMatrix oracle = ops::sddmm(ops::MatmulArgs::make_sddmm(s, a, b));
  ASSERT_EQ(fast.values().size(), oracle.values().size());
  for (std::size_t i = 0; i < fast.values().size(); ++i)
    EXPECT_NEAR(fast.values()[i].to_float(), oracle.values()[i].to_float(),
                0.01f + 0.02f * std::fabs(oracle.values()[i].to_float()))
        << i;
}

TEST(BackwardOps, DenseTransposedMatchesHandTransposedGemm) {
  Rng rng = Rng::seeded("backward-ops", 3);
  const HalfMatrix w = random_half_matrix(24, 40, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(24, 9, rng, 0.1f);
  const FloatMatrix got =
      ops::matmul_transposed(ops::MatmulArgs::make_transposed(w, b));
  const FloatMatrix ref = gemm_dense(transpose(w), b);
  ASSERT_EQ(got.rows(), ref.rows());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got.flat()[i], ref.flat()[i]) << i;
}

TEST(BackwardOps, UnsupportedKindThrows) {
  Rng rng = Rng::seeded("backward-ops", 4);
  const HalfMatrix a = random_half_matrix(8, 8, rng);
  const HalfMatrix b = random_half_matrix(8, 8, rng);
  ops::MatmulArgs args = ops::MatmulArgs::make(a, b);
  EXPECT_THROW(ops::matmul_transposed(args), Error);  // kind mismatch
  EXPECT_THROW(ops::sddmm(args), Error);
}

// -------------------------------------------- Linear training surface

TEST(LinearBackward, SparseWeightGradIsMaskedAndStructured) {
  Rng rng = Rng::seeded("linear-backward", 1);
  Linear layer = Linear::random(16, 32, rng);
  layer.sparsify({4, 2, 8});
  const HalfMatrix x = random_half_matrix(32, 6, rng, 0.5f);
  const FloatMatrix t = random_direction(16, 6, rng);
  const Linear::Grads g = layer.backward(x, loss_grad(layer.forward(x), t));

  ASSERT_NE(g.weight_vnm, nullptr);
  EXPECT_EQ(g.weight_vnm->m_indices(), layer.sparse_weight().m_indices());
  EXPECT_EQ(g.weight_vnm->column_locs(), layer.sparse_weight().column_locs());
  const HalfMatrix pattern = layer.sparse_weight().to_dense();
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 32; ++c)
      if (pattern(r, c).is_zero()) {
        EXPECT_EQ(g.weight(r, c), 0.0f) << r << ',' << c;
      }
}

TEST(LinearBackward, ApplyGradientsKeepsPatternAndReducesLoss) {
  Rng rng = Rng::seeded("linear-backward", 2);
  Linear layer = Linear::random(16, 32, rng);
  const VnmConfig fmt{4, 2, 8};
  layer.sparsify(fmt);
  const HalfMatrix x = random_half_matrix(32, 24, rng, 0.5f);
  const FloatMatrix t = random_direction(16, 24, rng);

  const double before = half_loss(layer.forward(x), t);
  for (int s = 0; s < 5; ++s) {
    const Linear::Grads g = layer.backward(x, loss_grad(layer.forward(x), t));
    layer.apply_gradients(g, 0.01f);
    EXPECT_TRUE(VnmMatrix::conforms(layer.sparse_weight().to_dense(), fmt));
  }
  EXPECT_LT(half_loss(layer.forward(x), t), before);
}

// ------------------------------------- transformer finite differences
//
// Directional FD over the fp16 forward: tolerances are looser than the
// kernel-level checks in test_properties because every intermediate
// activation rounds to fp16 (noise ~2^-11 per element accumulated over
// the network), while the analytic backward runs fp32.

TEST(MhaBackward, FiniteDifferenceDense) {
  for (const bool causal : {false, true}) {
    Rng rng = Rng::seeded("mha-fd", causal ? 1 : 0);
    MultiHeadAttention mha(16, 2, rng, causal);
    const std::size_t tokens = 6;
    const HalfMatrix x = random_half_matrix(16, tokens, rng, 0.5f);
    const FloatMatrix t = random_direction(16, tokens, rng);

    const FloatMatrix grad_x =
        mha.backward(x, loss_grad(mha.forward(x), t), nullptr);
    const auto fwd = [&](const HalfMatrix& xx) { return mha.forward(xx); };
    EXPECT_LT(directional_rel_err(fwd, grad_x, x, t, rng), 5e-2)
        << "causal=" << causal;
  }
}

TEST(MhaBackward, FiniteDifferenceSparseProjections) {
  Rng rng = Rng::seeded("mha-fd-sparse");
  MultiHeadAttention mha(16, 2, rng);
  mha.sparsify({4, 2, 8});
  const std::size_t tokens = 5;
  const HalfMatrix x = random_half_matrix(16, tokens, rng, 0.5f);
  const FloatMatrix t = random_direction(16, tokens, rng);

  MhaGrads grads;
  const FloatMatrix grad_x =
      mha.backward(x, loss_grad(mha.forward(x), t), &grads);
  EXPECT_NE(grads.wq.weight_vnm, nullptr);  // sparse ops really ran

  const auto fwd = [&](const HalfMatrix& xx) { return mha.forward(xx); };
  EXPECT_LT(directional_rel_err(fwd, grad_x, x, t, rng), 5e-2);
}

TEST(MhaBackward, DynamicScoreSparsityThrows) {
  Rng rng = Rng::seeded("mha-dynamic");
  MultiHeadAttention mha(16, 2, rng);
  mha.set_dynamic_score_sparsity(NmPattern{2, 4});
  const HalfMatrix x = random_half_matrix(16, 4, rng, 0.5f);
  EXPECT_THROW(mha.backward(x, FloatMatrix(16, 4), nullptr), Error);
}

TEST(EncoderLayerBackward, FiniteDifference) {
  Rng rng = Rng::seeded("encoder-layer-fd");
  const ModelConfig cfg{.name = "fd", .layers = 1, .hidden = 16, .heads = 2,
                        .ffn_hidden = 32, .seq_len = 6};
  EncoderLayer layer(cfg, rng);
  const HalfMatrix x = random_half_matrix(16, 6, rng, 0.5f);
  const FloatMatrix t = random_direction(16, 6, rng);

  EncoderLayerGrads grads;
  const FloatMatrix grad_x =
      layer.backward(x, loss_grad(layer.forward(x), t), &grads);
  EXPECT_EQ(grads.ln1_gamma.size(), 16u);

  const auto fwd = [&](const HalfMatrix& xx) { return layer.forward(xx); };
  EXPECT_LT(directional_rel_err(fwd, grad_x, x, t, rng), 8e-2);
}

TEST(EncoderBackward, FiniteDifferenceSparseStack) {
  Rng rng = Rng::seeded("encoder-fd");
  const ModelConfig cfg{.name = "fd2", .layers = 2, .hidden = 16, .heads = 2,
                        .ffn_hidden = 32, .seq_len = 5};
  Encoder enc(cfg, rng);
  enc.sparsify({4, 2, 8});
  const HalfMatrix x = random_half_matrix(16, 5, rng, 0.5f);
  const FloatMatrix t = random_direction(16, 5, rng);

  std::vector<EncoderLayerGrads> grads;
  const FloatMatrix grad_x =
      enc.backward(x, loss_grad(enc.forward(x), t), &grads);
  ASSERT_EQ(grads.size(), 2u);

  const auto fwd = [&](const HalfMatrix& xx) { return enc.forward(xx); };
  EXPECT_LT(directional_rel_err(fwd, grad_x, x, t, rng), 1e-1);
}

// ---------------------------------------------------- fine-tune loop

TEST(Finetune, LinearRecoversHalfThePostPruneLoss) {
  // The PR's acceptance bar: magnitude-prune -> V:N:M convert -> SGD on
  // the sparse kernels removes >= 50% of the post-prune loss.
  Rng task_rng = Rng::seeded("finetune-task");
  const workloads::RegressionTask task =
      workloads::regression_task(64, 128, 256, task_rng);
  Rng student_rng = Rng::seeded("finetune-student");
  Linear student = Linear::random(64, 128, student_rng);

  pruning::SparseFinetuneConfig cfg;
  cfg.format = {8, 2, 8};
  cfg.steps = 60;
  const pruning::SparseFinetuneReport r =
      pruning::finetune_linear(student, task, cfg);

  EXPECT_GT(r.post_prune_loss, 0.0);
  EXPECT_GE(r.recovery(), 0.5)
      << "post-prune " << r.post_prune_loss << " -> " << r.final_loss;
  // The loop is monotone by construction (backtracking line search).
  for (std::size_t i = 1; i < r.curve.size(); ++i)
    EXPECT_LE(r.curve[i], r.curve[i - 1]) << i;
  // And the student is still exactly V:N:M.
  EXPECT_TRUE(
      VnmMatrix::conforms(student.sparse_weight().to_dense(), cfg.format));
}

TEST(Finetune, EncoderRecoversTowardDenseOutputs) {
  // Distillation-style recovery: fine-tune the pruned encoder to
  // reproduce its own dense outputs.
  Rng rng = Rng::seeded("finetune-encoder");
  const ModelConfig mc{.name = "ft", .layers = 1, .hidden = 32, .heads = 2,
                       .ffn_hidden = 64, .seq_len = 16};
  Encoder enc(mc, rng);
  const HalfMatrix x = random_half_matrix(32, 16, rng, 0.5f);
  const FloatMatrix dense_out = to_float(enc.forward(x));

  pruning::SparseFinetuneConfig cfg;
  cfg.format = {4, 2, 8};
  cfg.steps = 12;
  cfg.lr = 0.05f;
  const pruning::SparseFinetuneReport r =
      pruning::finetune_encoder(enc, x, dense_out, cfg);
  EXPECT_GT(r.post_prune_loss, 0.0);
  EXPECT_LT(r.final_loss, r.post_prune_loss);
}

}  // namespace
}  // namespace venom
