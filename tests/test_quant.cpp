// Tests for the int8/fp8-quantized V:N:M datapath: container round
// trips, fast-vs-scalar bit identity across ragged shapes and both
// ColumnLocModes, registry dispatch (dtype descs, VENOM_BACKEND
// rerouting, the ExecContext quant cache), and quantize->serve parity
// of a whole encoder.
#include "quant/quantized_vnm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/gemm.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "io/serialize.hpp"
#include "ops/context.hpp"
#include "ops/ops.hpp"
#include "spatha/plan.hpp"
#include "spatha/spmm.hpp"
#include "spatha/tuning_cache.hpp"
#include "transformer/encoder.hpp"

namespace venom::quant {
namespace {

VnmMatrix random_vnm(std::size_t rows, std::size_t cols, VnmConfig cfg,
                     std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

TEST(Quantize, RoundTripErrorBoundedByScale) {
  const VnmMatrix fp16 = random_vnm(16, 32, {4, 2, 8}, 1);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  const VnmMatrix back = q.dequantize();
  ASSERT_EQ(back.rows(), fp16.rows());
  for (std::size_t r = 0; r < 16; ++r) {
    const float bound = q.row_scale(r) * 0.5f + 1e-6f;
    for (std::size_t g = 0; g < fp16.groups_per_row(); ++g)
      for (std::size_t j = 0; j < 2; ++j)
        EXPECT_NEAR(back.value(r, g, j).to_float(),
                    fp16.value(r, g, j).to_float(), bound + 2e-3f);
  }
}

TEST(Quantize, StructureIsShared) {
  const VnmMatrix fp16 = random_vnm(8, 16, {4, 2, 8}, 2);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  EXPECT_EQ(q.config(), fp16.config());
  EXPECT_EQ(q.nnz(), fp16.nnz());
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t g = 0; g < fp16.groups_per_row(); ++g)
      for (std::size_t j = 0; j < 2; ++j)
        EXPECT_EQ(q.m_index(r, g, j), fp16.m_index(r, g, j));
}

TEST(Quantize, ValuesUseFullInt8Range) {
  const VnmMatrix fp16 = random_vnm(4, 16, {4, 2, 8}, 3);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  // The max-magnitude value of each row maps to +-127.
  for (std::size_t r = 0; r < 4; ++r) {
    int max_abs = 0;
    for (std::size_t g = 0; g < fp16.groups_per_row(); ++g)
      for (std::size_t j = 0; j < 2; ++j)
        max_abs = std::max(max_abs, std::abs(int(q.value(r, g, j))));
    EXPECT_EQ(max_abs, 127);
  }
}

TEST(Quantize, AllZeroRowGetsZeroScale) {
  HalfMatrix dense(4, 8);
  dense(1, 0) = half_t(1.0f);  // rows 0, 2, 3 entirely zero
  const VnmMatrix fp16 = VnmMatrix::compress(dense, {2, 2, 8});
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  EXPECT_EQ(q.row_scale(0), 0.0f);
  EXPECT_GT(q.row_scale(1), 0.0f);
  // Dequantize round-trips the zero rows exactly.
  EXPECT_TRUE(q.dequantize().to_dense() == dense);
}

TEST(SpmmI8, CloseToFp16Kernel) {
  Rng rng(4);
  const VnmMatrix fp16 = random_vnm(32, 64, {8, 2, 8}, 5);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  const FloatMatrix c_q = spmm_vnm_i8(q, b);
  const FloatMatrix c_fp = spatha::spmm_vnm(fp16, b);
  // int8 x int8 with per-row/col scales: a few percent relative error.
  EXPECT_LT(rel_fro_error(c_q, c_fp), 0.05f);
}

TEST(SpmmI8, ExactOnPowerOfTwoValues) {
  // Values representable exactly after scaling incur zero error.
  HalfMatrix dense(2, 8);
  dense(0, 0) = half_t(1.0f);
  dense(0, 4) = half_t(-0.5f);
  dense(1, 1) = half_t(2.0f);
  dense(1, 5) = half_t(1.0f);
  const VnmMatrix fp16 = VnmMatrix::compress(dense, {2, 1, 4});
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  HalfMatrix b(8, 2);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = half_t(1.0f);
  const FloatMatrix c_q = spmm_vnm_i8(q, b);
  const FloatMatrix ref = gemm_dense(dense, b);
  EXPECT_LT(max_abs_diff(c_q, ref), 1e-2f);
}

TEST(SpmmI8, ShapeMismatchThrows) {
  const QuantizedVnmMatrix q =
      QuantizedVnmMatrix::quantize(random_vnm(8, 16, {4, 2, 8}, 6));
  EXPECT_THROW(spmm_vnm_i8(q, HalfMatrix(8, 4)), Error);
}

TEST(Footprint, Int8HalvesValueBytes) {
  const VnmMatrix fp16 = random_vnm(64, 128, {16, 2, 8}, 7);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  // values shrink 2x; scales add 4 bytes/row.
  EXPECT_LT(q.compressed_bytes(), fp16.compressed_bytes());
}

TEST(Footprint, Fp8HalvesValueBytesExactly) {
  const VnmMatrix fp16 = random_vnm(64, 128, {16, 2, 8}, 8);
  const Fp8VnmMatrix q = Fp8VnmMatrix::quantize(fp16, Fp8Format::kE4M3);
  // fp8 carries no scales: exactly nnz bytes saved vs the fp16 image.
  EXPECT_EQ(q.compressed_bytes(), fp16.compressed_bytes() - fp16.nnz());
}

// ------------------------------------------------------------- parity
//
// The exactness contract of the quantized datapath: each fast kernel is
// bit-identical to its scalar oracle on every shape and mode. For int8
// this holds because int32 accumulation is exact and both sides share
// the B-quantization helper and the dequantization expression; for fp8
// because the fast strips accumulate each output element in the
// oracle's ascending (group, j) order.

struct RaggedCase {
  std::size_t rows, cols, b_cols;
  VnmConfig fmt;
};

constexpr RaggedCase kRaggedCases[] = {
    {16, 32, 7, {4, 2, 8}},    {32, 40, 13, {8, 2, 10}},
    {8, 64, 70, {8, 2, 16}},   {64, 30, 5, {2, 1, 5}},
    {12, 56, 33, {4, 2, 7}},   {30, 64, 17, {10, 2, 8}},
};

TEST(SpmmI8, FastMatchesScalarOnRaggedShapesBothModes) {
  std::uint64_t seed = 40;
  for (const RaggedCase& c : kRaggedCases) {
    const VnmMatrix fp16 = random_vnm(c.rows, c.cols, c.fmt, seed);
    const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
    Rng rng(seed + 1);
    const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
    for (const spatha::ColumnLocMode mode :
         {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
      spatha::SpmmConfig cfg =
          spatha::select_config(c.fmt, c.rows, c.cols, c.b_cols);
      cfg.column_loc = mode;
      cfg.chunk_grain = 1 + seed % 3;  // exercise the chunk partition
      const FloatMatrix fast = spmm_vnm_i8(q, b, cfg);
      const FloatMatrix scalar = spmm_vnm_i8_scalar(q, b, mode);
      EXPECT_EQ(fast, scalar) << "mode=" << int(mode) << " rows=" << c.rows;
    }
    seed += 3;
  }
}

TEST(SpmmI8, BitIdenticalAcrossRuns) {
  const VnmMatrix fp16 = random_vnm(32, 64, {8, 2, 8}, 50);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  Rng rng(51);
  const HalfMatrix b = random_half_matrix(64, 24, rng);
  const FloatMatrix first = spmm_vnm_i8(q, b);
  const FloatMatrix second = spmm_vnm_i8(q, b);
  EXPECT_EQ(first, second);
}

TEST(SpmmFp8, FastMatchesScalarOnRaggedShapesBothModesBothFormats) {
  std::uint64_t seed = 60;
  for (const RaggedCase& c : kRaggedCases) {
    const VnmMatrix fp16 = random_vnm(c.rows, c.cols, c.fmt, seed);
    Rng rng(seed + 1);
    const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
    for (const Fp8Format format : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
      const Fp8VnmMatrix q = Fp8VnmMatrix::quantize(fp16, format);
      for (const spatha::ColumnLocMode mode :
           {spatha::ColumnLocMode::kEnabled,
            spatha::ColumnLocMode::kFixed}) {
        spatha::SpmmConfig cfg =
            spatha::select_config(c.fmt, c.rows, c.cols, c.b_cols);
        cfg.column_loc = mode;
        const FloatMatrix fast = spmm_vnm_fp8(q, b, cfg);
        const FloatMatrix scalar = spmm_vnm_fp8_scalar(q, b, mode);
        EXPECT_EQ(fast, scalar)
            << to_string(format) << " mode=" << int(mode);
      }
    }
    seed += 3;
  }
}

TEST(SpmmFp8, CloseToFp16Kernel) {
  Rng rng(70);
  const VnmMatrix fp16 = random_vnm(32, 64, {8, 2, 8}, 71);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  const FloatMatrix c_fp = spatha::spmm_vnm(fp16, b);
  // Half-ulp relative storage error: 2^-4 per value for E4M3, 2^-3 for
  // E5M2.
  const Fp8VnmMatrix q4 = Fp8VnmMatrix::quantize(fp16, Fp8Format::kE4M3);
  EXPECT_LT(rel_fro_error(spmm_vnm_fp8(q4, b), c_fp), 0.05f);
  const Fp8VnmMatrix q5 = Fp8VnmMatrix::quantize(fp16, Fp8Format::kE5M2);
  EXPECT_LT(rel_fro_error(spmm_vnm_fp8(q5, b), c_fp), 0.1f);
}

TEST(Fp8Vnm, DequantizeIsLossless) {
  // Every fp8 value is exactly representable in fp16, so decode back to
  // the fp16 container loses nothing relative to the fp8 image.
  const VnmMatrix fp16 = random_vnm(16, 32, {4, 2, 8}, 80);
  for (const Fp8Format format : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    const Fp8VnmMatrix q = Fp8VnmMatrix::quantize(fp16, format);
    const VnmMatrix back = q.dequantize();
    for (std::size_t r = 0; r < q.rows(); ++r)
      for (std::size_t g = 0; g < q.groups_per_row(); ++g)
        for (std::size_t j = 0; j < q.config().n; ++j)
          EXPECT_EQ(back.value(r, g, j).to_float(), q.value(r, g, j));
    // Structure is shared verbatim.
    EXPECT_EQ(back.m_indices(), fp16.m_indices());
    EXPECT_EQ(back.column_locs(), fp16.column_locs());
  }
}

TEST(FromParts, ValidatesQuantizedStructures) {
  const VnmConfig cfg{2, 2, 8};
  std::vector<std::int8_t> values(2 * 1 * 2, 1);
  std::vector<std::uint8_t> m_indices(values.size(), 0);
  std::vector<std::uint8_t> column_loc(1 * 1 * 4, 0);
  std::vector<float> scales(2, 0.5f);
  EXPECT_NO_THROW(QuantizedVnmMatrix::from_parts(cfg, 2, 8, values,
                                                 m_indices, column_loc,
                                                 scales));
  auto bad_idx = m_indices;
  bad_idx[0] = 4;  // selector out of the 4 selected columns
  EXPECT_THROW(QuantizedVnmMatrix::from_parts(cfg, 2, 8, values, bad_idx,
                                              column_loc, scales),
               Error);
  auto bad_loc = column_loc;
  bad_loc[0] = 8;  // column offset out of M
  EXPECT_THROW(QuantizedVnmMatrix::from_parts(cfg, 2, 8, values, m_indices,
                                              bad_loc, scales),
               Error);
  auto bad_scales = scales;
  bad_scales[0] = -1.0f;  // scales must be finite and non-negative
  EXPECT_THROW(QuantizedVnmMatrix::from_parts(cfg, 2, 8, values, m_indices,
                                              column_loc, bad_scales),
               Error);
  EXPECT_THROW(QuantizedVnmMatrix::from_parts(cfg, 2, 8, values, m_indices,
                                              column_loc, {0.5f}),
               Error);  // wrong scale count

  std::vector<std::uint8_t> f8_values(values.size(), 0x3c);
  EXPECT_NO_THROW(Fp8VnmMatrix::from_parts(cfg, 2, 8, Fp8Format::kE5M2,
                                           f8_values, m_indices,
                                           column_loc));
  EXPECT_THROW(Fp8VnmMatrix::from_parts(cfg, 2, 8, Fp8Format::kE5M2,
                                        f8_values, bad_idx, column_loc),
               Error);
  EXPECT_THROW(Fp8VnmMatrix::from_parts(cfg, 2, 8, Fp8Format::kE4M3, {},
                                        m_indices, column_loc),
               Error);
}

// ----------------------------------------------------------- dispatch

TEST(QuantDispatch, QuantizedArgsSelectQuantizedBackends) {
  const VnmMatrix fp16 = random_vnm(16, 32, {4, 2, 8}, 90);
  Rng rng(91);
  const HalfMatrix b = random_half_matrix(32, 8, rng);

  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  const ops::MatmulArgs qargs = ops::MatmulArgs::make(q, b);
  EXPECT_EQ(qargs.desc().dtype, ops::Dtype::kI8);
  EXPECT_EQ(ops::BackendRegistry::instance().select(qargs.desc()).name(),
            "vnm-int8");

  const Fp8VnmMatrix f8 = Fp8VnmMatrix::quantize(fp16, Fp8Format::kE5M2);
  const ops::MatmulArgs fargs = ops::MatmulArgs::make(f8, b);
  EXPECT_EQ(fargs.desc().dtype, ops::Dtype::kF8E5M2);
  EXPECT_EQ(ops::BackendRegistry::instance().select(fargs.desc()).name(),
            "vnm-fp8");

  // Forced scalar oracles agree bitwise with the production backends.
  const FloatMatrix fast = ops::matmul(qargs);
  {
    const ops::ScopedBackend forced("vnm-int8-scalar");
    EXPECT_EQ(ops::matmul(qargs), fast);
  }
  const FloatMatrix f8_fast = ops::matmul(fargs);
  {
    const ops::ScopedBackend forced("vnm-fp8-scalar");
    EXPECT_EQ(ops::matmul(fargs), f8_fast);
  }
}

TEST(QuantDispatch, TunedI8EntryRoundTripsAndDispatchesBitIdentically) {
  const VnmConfig fmt{16, 2, 8};
  const VnmMatrix fp16 = random_vnm(64, 128, fmt, 95);
  Rng rng(96);
  const HalfMatrix b = random_half_matrix(128, 32, rng);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  const ops::MatmulArgs qargs = ops::MatmulArgs::make(q, b);

  const FloatMatrix untuned = ops::matmul(qargs);

  // A tuned winner that differs from the int8 heuristic, persisted and
  // reloaded the way a $VENOM_TUNE_CACHE process would see it: the entry
  // must survive the JSON round trip under its "+i8" tag.
  spatha::SpmmConfig tuned =
      spatha::select_config_heuristic_i8(fmt, 64, 128, 32);
  tuned.chunk_grain = 2;
  spatha::TuningEntry entry;
  entry.config = tuned;
  const spatha::TuningKey key = spatha::make_tuning_key_i8(fmt, 64, 128, 32);
  spatha::TuningCache on_disk;
  on_disk.put(key, entry);
  const std::string path = testing::TempDir() + "quant_i8_cache.json";
  io::save_tuning_cache(on_disk, path);
  const spatha::TuningCache loaded = io::load_tuning_cache(path);
  const auto reloaded = loaded.lookup_i8(fmt, 64, 128, 32);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(*reloaded, tuned);
  // The fp16 lookup must not surface it.
  EXPECT_FALSE(loaded.lookup(fmt, 64, 128, 32).has_value());

  // Installed globally (what the env-var load does), the vnm-int8
  // registry backend dispatches the tuned config — and stays
  // bit-identical to both the untuned dispatch and the scalar oracle
  // (integer accumulation is exact under any valid tiling).
  spatha::TuningCache::global().put(key, entry);
  ASSERT_EQ(spatha::select_config_i8(fmt, 64, 128, 32), tuned);
  const FloatMatrix tuned_out = ops::matmul(qargs);
  spatha::TuningCache::global().erase(key);

  EXPECT_EQ(tuned_out, untuned);
  EXPECT_EQ(tuned_out, spmm_vnm_i8_scalar(q, b, tuned.column_loc));
}

TEST(QuantDispatch, ForcedBackendQuantizesFp16ArgsOnTheFly) {
  // VENOM_BACKEND=vnm-int8 (here the RAII equivalent) reroutes plain
  // fp16 V:N:M args through the quantized datapath: the backend
  // quantizes the weight on the fly, matching the explicit int8 product
  // bit for bit.
  const VnmMatrix fp16 = random_vnm(16, 32, {4, 2, 8}, 95);
  Rng rng(96);
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  const ops::MatmulArgs args = ops::MatmulArgs::make(fp16, b);
  EXPECT_EQ(args.desc().dtype, ops::Dtype::kF16);

  const FloatMatrix expect_i8 =
      spmm_vnm_i8(QuantizedVnmMatrix::quantize(fp16), b);
  {
    const ops::ScopedBackend forced("vnm-int8");
    EXPECT_EQ(ops::matmul(args), expect_i8);
  }
  const FloatMatrix expect_f8 =
      spmm_vnm_fp8(Fp8VnmMatrix::quantize(fp16, Fp8Format::kE4M3), b);
  {
    const ops::ScopedBackend forced("vnm-fp8");
    EXPECT_EQ(ops::matmul(args), expect_f8);
  }
}

TEST(QuantDispatch, Fp16BackendsRejectQuantizedDescs) {
  // A quantized desc must never fall through to an fp16 kernel.
  const VnmMatrix fp16 = random_vnm(16, 32, {4, 2, 8}, 97);
  Rng rng(98);
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  const ops::MatmulDesc desc =
      ops::MatmulArgs::make(QuantizedVnmMatrix::quantize(fp16), b).desc();
  for (const char* name : {"vnm-fast", "vnm-scalar", "vnm-mma"}) {
    const ops::Matmul* backend = ops::BackendRegistry::instance().find(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_FALSE(backend->supports(desc, cpu_feature_string())) << name;
  }
}

TEST(QuantCache, MemoizesByFingerprintAndDtype) {
  auto fp16 = std::make_shared<const VnmMatrix>(
      random_vnm(16, 32, {4, 2, 8}, 100));
  const std::uint64_t fp = spatha::weight_fingerprint(*fp16);
  ops::QuantCache cache(4);

  const auto first = cache.get_i8(*fp16, fp);
  const auto second = cache.get_i8(*fp16, fp);
  EXPECT_EQ(first.get(), second.get());  // same image, not a copy
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Each fp8 format is its own key.
  const auto e5 = cache.get_fp8(*fp16, fp, Fp8Format::kE5M2);
  const auto e4 = cache.get_fp8(*fp16, fp, Fp8Format::kE4M3);
  EXPECT_NE(e5->values(), e4->values());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.get_fp8(*fp16, fp, Fp8Format::kE5M2).get(), e5.get());
}

TEST(QuantCache, EvictsLeastRecentlyUsed) {
  ops::QuantCache cache(1);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 101);
  const VnmMatrix b = random_vnm(8, 16, {4, 2, 8}, 102);
  cache.get_i8(a, spatha::weight_fingerprint(a));
  cache.get_i8(b, spatha::weight_fingerprint(b));
  EXPECT_EQ(cache.size(), 1u);
  // `a` was evicted: fetching it again is a miss.
  cache.get_i8(a, spatha::weight_fingerprint(a));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(QuantCache, DispatchReusesTheContextCache) {
  // Fingerprinted fp16 args through a forced quantized backend hit the
  // ExecContext-owned cache from the second dispatch on.
  ops::ExecContext ctx;
  auto fp16 = std::make_shared<const VnmMatrix>(
      random_vnm(16, 32, {4, 2, 8}, 105));
  const std::uint64_t fp = spatha::weight_fingerprint(*fp16);
  Rng rng(106);
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  const ops::MatmulArgs args = ops::MatmulArgs::make(fp16, fp, b);

  const ops::ScopedBackend forced("vnm-int8");
  const FloatMatrix first = ops::matmul(args, ctx);
  const FloatMatrix second = ops::matmul(args, ctx);
  EXPECT_EQ(first, second);
  EXPECT_EQ(ctx.quant_cache().stats().misses, 1u);
  EXPECT_EQ(ctx.quant_cache().stats().hits, 1u);
}

// ---------------------------------------------------- transformer mode

TEST(LinearQuant, RequiresSparsifiedLayer) {
  Rng rng(110);
  transformer::Linear layer = transformer::Linear::random(16, 32, rng);
  EXPECT_THROW(layer.set_weight_dtype(ops::Dtype::kI8), Error);
  layer.sparsify({4, 2, 8});
  EXPECT_NO_THROW(layer.set_weight_dtype(ops::Dtype::kI8));
  EXPECT_EQ(layer.weight_dtype(), ops::Dtype::kI8);
  ASSERT_NE(layer.int8_weight(), nullptr);
  EXPECT_EQ(layer.fp8_weight(), nullptr);
}

TEST(LinearQuant, QuantizedForwardCloseToFp16AndRestorable) {
  Rng rng(111);
  transformer::Linear layer = transformer::Linear::random(32, 64, rng);
  layer.sparsify({8, 2, 8});
  const HalfMatrix x = random_half_matrix(64, 12, rng, 0.5f);
  const HalfMatrix y_fp16 = layer.forward(x);

  layer.set_weight_dtype(ops::Dtype::kI8);
  const HalfMatrix y_i8 = layer.forward(x);
  EXPECT_LT(rel_fro_error(to_float(y_i8), to_float(y_fp16)), 0.05f);
  // Quantized-weight serving is deterministic.
  EXPECT_TRUE(layer.forward(x) == y_i8);

  layer.set_weight_dtype(ops::Dtype::kF8E4M3);
  ASSERT_NE(layer.fp8_weight(), nullptr);
  EXPECT_EQ(layer.int8_weight(), nullptr);
  EXPECT_LT(rel_fro_error(to_float(layer.forward(x)), to_float(y_fp16)),
            0.1f);

  // Restoring fp16 is bit-identical to the pre-quantization forward.
  layer.set_weight_dtype(ops::Dtype::kF16);
  EXPECT_TRUE(layer.forward(x) == y_fp16);
}

TEST(EncoderQuant, QuantizeServeParityAgainstFp16) {
  // The tentpole end-to-end gate: an entire sparsified encoder runs
  // reduced-precision within the documented bound of its fp16 serve
  // (int8 <= 5%, fp8-e4m3 <= 10% relative Frobenius), deterministically.
  Rng rng = Rng::seeded("encoder-quant");
  const transformer::ModelConfig cfg{.name = "quant", .layers = 2,
                                     .hidden = 32, .heads = 4,
                                     .ffn_hidden = 64, .seq_len = 16};
  transformer::Encoder enc(cfg, rng);
  enc.sparsify({8, 2, 8});
  const HalfMatrix x = random_half_matrix(32, 16, rng, 0.5f);
  const HalfMatrix y_fp16 = enc.forward(x);

  enc.set_weight_dtype(ops::Dtype::kI8);
  const HalfMatrix y_i8 = enc.forward(x);
  EXPECT_LT(rel_fro_error(to_float(y_i8), to_float(y_fp16)), 0.05f);
  EXPECT_TRUE(enc.forward(x) == y_i8);  // bit-identical across runs

  enc.set_weight_dtype(ops::Dtype::kF8E4M3);
  const HalfMatrix y_f8 = enc.forward(x);
  EXPECT_LT(rel_fro_error(to_float(y_f8), to_float(y_fp16)), 0.1f);
  EXPECT_TRUE(enc.forward(x) == y_f8);

  enc.set_weight_dtype(ops::Dtype::kF16);
  EXPECT_TRUE(enc.forward(x) == y_fp16);
}

TEST(LinearQuant, TrainingKeepsFp16MastersAndRequantizes) {
  // apply_gradients() updates the fp16 master and refreshes the int8
  // image, so serving after a step uses the stepped weight.
  Rng rng(115);
  transformer::Linear layer = transformer::Linear::random(16, 32, rng);
  layer.sparsify({4, 2, 8});
  layer.set_weight_dtype(ops::Dtype::kI8);
  const HalfMatrix x = random_half_matrix(32, 8, rng, 0.5f);
  const HalfMatrix y_before = layer.forward(x);

  FloatMatrix gy(16, 8);
  for (auto& v : gy.flat()) v = 0.1f * rng.normal();
  const transformer::Linear::Grads g = layer.backward(x, gy);
  layer.apply_gradients(g, 0.1f);

  // The image tracked the update (the forward changed), and it matches a
  // fresh quantization of the stepped sparse weight.
  const HalfMatrix y_after = layer.forward(x);
  EXPECT_FALSE(y_after == y_before);
  ASSERT_NE(layer.int8_weight(), nullptr);
  const QuantizedVnmMatrix fresh =
      QuantizedVnmMatrix::quantize(layer.sparse_weight());
  EXPECT_EQ(layer.int8_weight()->values(), fresh.values());
  EXPECT_EQ(layer.int8_weight()->row_scales(), fresh.row_scales());
}

}  // namespace
}  // namespace venom::quant
