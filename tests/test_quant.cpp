// Tests for the int8-quantized V:N:M path.
#include "quant/quantized_vnm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"

namespace venom::quant {
namespace {

VnmMatrix random_vnm(std::size_t rows, std::size_t cols, VnmConfig cfg,
                     std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

TEST(Quantize, RoundTripErrorBoundedByScale) {
  const VnmMatrix fp16 = random_vnm(16, 32, {4, 2, 8}, 1);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  const VnmMatrix back = q.dequantize();
  ASSERT_EQ(back.rows(), fp16.rows());
  for (std::size_t r = 0; r < 16; ++r) {
    const float bound = q.row_scale(r) * 0.5f + 1e-6f;
    for (std::size_t g = 0; g < fp16.groups_per_row(); ++g)
      for (std::size_t j = 0; j < 2; ++j)
        EXPECT_NEAR(back.value(r, g, j).to_float(),
                    fp16.value(r, g, j).to_float(), bound + 2e-3f);
  }
}

TEST(Quantize, StructureIsShared) {
  const VnmMatrix fp16 = random_vnm(8, 16, {4, 2, 8}, 2);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  EXPECT_EQ(q.config(), fp16.config());
  EXPECT_EQ(q.nnz(), fp16.nnz());
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t g = 0; g < fp16.groups_per_row(); ++g)
      for (std::size_t j = 0; j < 2; ++j)
        EXPECT_EQ(q.m_index(r, g, j), fp16.m_index(r, g, j));
}

TEST(Quantize, ValuesUseFullInt8Range) {
  const VnmMatrix fp16 = random_vnm(4, 16, {4, 2, 8}, 3);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  // The max-magnitude value of each row maps to +-127.
  for (std::size_t r = 0; r < 4; ++r) {
    int max_abs = 0;
    for (std::size_t g = 0; g < fp16.groups_per_row(); ++g)
      for (std::size_t j = 0; j < 2; ++j)
        max_abs = std::max(max_abs, std::abs(int(q.value(r, g, j))));
    EXPECT_EQ(max_abs, 127);
  }
}

TEST(Quantize, AllZeroRowGetsZeroScale) {
  HalfMatrix dense(4, 8);
  dense(1, 0) = half_t(1.0f);  // rows 0, 2, 3 entirely zero
  const VnmMatrix fp16 = VnmMatrix::compress(dense, {2, 2, 8});
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  EXPECT_EQ(q.row_scale(0), 0.0f);
  EXPECT_GT(q.row_scale(1), 0.0f);
  // Dequantize round-trips the zero rows exactly.
  EXPECT_TRUE(q.dequantize().to_dense() == dense);
}

TEST(SpmmI8, CloseToFp16Kernel) {
  Rng rng(4);
  const VnmMatrix fp16 = random_vnm(32, 64, {8, 2, 8}, 5);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  const FloatMatrix c_q = spmm_vnm_i8(q, b);
  const FloatMatrix c_fp = spatha::spmm_vnm(fp16, b);
  // int8 x int8 with per-row/col scales: a few percent relative error.
  EXPECT_LT(rel_fro_error(c_q, c_fp), 0.05f);
}

TEST(SpmmI8, ExactOnPowerOfTwoValues) {
  // Values representable exactly after scaling incur zero error.
  HalfMatrix dense(2, 8);
  dense(0, 0) = half_t(1.0f);
  dense(0, 4) = half_t(-0.5f);
  dense(1, 1) = half_t(2.0f);
  dense(1, 5) = half_t(1.0f);
  const VnmMatrix fp16 = VnmMatrix::compress(dense, {2, 1, 4});
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  HalfMatrix b(8, 2);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = half_t(1.0f);
  const FloatMatrix c_q = spmm_vnm_i8(q, b);
  const FloatMatrix ref = gemm_dense(dense, b);
  EXPECT_LT(max_abs_diff(c_q, ref), 1e-2f);
}

TEST(SpmmI8, ShapeMismatchThrows) {
  const QuantizedVnmMatrix q =
      QuantizedVnmMatrix::quantize(random_vnm(8, 16, {4, 2, 8}, 6));
  EXPECT_THROW(spmm_vnm_i8(q, HalfMatrix(8, 4)), Error);
}

TEST(Footprint, Int8HalvesValueBytes) {
  const VnmMatrix fp16 = random_vnm(64, 128, {16, 2, 8}, 7);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(fp16);
  // values shrink 2x; scales add 4 bytes/row.
  EXPECT_LT(q.compressed_bytes(), fp16.compressed_bytes());
}

}  // namespace
}  // namespace venom::quant
