// Unit tests for the software binary16 type.
#include "common/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace venom {
namespace {

TEST(Half, ZeroRoundTrip) {
  EXPECT_EQ(half_t(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half_t(-0.0f).bits(), 0x8000u);
  EXPECT_TRUE(half_t(0.0f).is_zero());
  EXPECT_TRUE(half_t(-0.0f).is_zero());
  EXPECT_EQ(half_t(-0.0f).to_float(), 0.0f);
}

TEST(Half, OneAndSimpleValues) {
  EXPECT_EQ(half_t(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half_t(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(half_t(0.5f).bits(), 0x3800u);
  EXPECT_FLOAT_EQ(half_t(1.5f).to_float(), 1.5f);
  EXPECT_FLOAT_EQ(half_t(-0.25f).to_float(), -0.25f);
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Every finite half must convert to float and back bit-exactly.
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = half_t::from_bits(static_cast<std::uint16_t>(bits));
    if (h.is_nan()) continue;  // NaN payloads may be canonicalized
    const half_t round(h.to_float());
    EXPECT_EQ(round.bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Half, RoundToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half; RNE
  // picks the even mantissa (1.0).
  EXPECT_EQ(half_t(1.0f + 0x1.0p-11f).bits(), half_t(1.0f).bits());
  // 1.0 + 3*2^-11 is halfway between 1+2^-10 (odd) and 1+2^-9 (even).
  EXPECT_EQ(half_t(1.0f + 3 * 0x1.0p-11f).bits(),
            half_t(1.0f + 0x1.0p-9f).bits());
  // Just above halfway rounds up.
  EXPECT_EQ(half_t(1.0f + 0x1.2p-11f).bits(), 0x3c01u);
}

TEST(Half, Subnormals) {
  const float min_sub = 0x1.0p-24f;  // smallest positive half subnormal
  EXPECT_EQ(half_t(min_sub).bits(), 0x0001u);
  EXPECT_FLOAT_EQ(half_t::from_bits(0x0001).to_float(), min_sub);
  // Largest subnormal.
  const float max_sub = 1023.0f * 0x1.0p-24f;
  EXPECT_EQ(half_t(max_sub).bits(), 0x03ffu);
  // Below half of the smallest subnormal flushes to zero.
  EXPECT_TRUE(half_t(0x1.0p-26f).is_zero());
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half_t(65520.0f).is_inf());
  EXPECT_TRUE(half_t(1e10f).is_inf());
  EXPECT_TRUE(half_t(-1e10f).is_inf());
  EXPECT_EQ(half_t(-1e10f).bits(), 0xfc00u);
  // 65504 is the largest finite half.
  EXPECT_EQ(half_t(65504.0f).bits(), 0x7bffu);
  EXPECT_FALSE(half_t(65504.0f).is_inf());
}

TEST(Half, NanPropagation) {
  const half_t nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.is_nan());
  EXPECT_TRUE(std::isnan(nan.to_float()));
  EXPECT_FALSE(nan == nan);  // IEEE semantics
  EXPECT_TRUE((nan + half_t(1.0f)).is_nan());
}

TEST(Half, Arithmetic) {
  EXPECT_EQ((half_t(1.5f) + half_t(2.5f)).to_float(), 4.0f);
  EXPECT_EQ((half_t(3.0f) - half_t(5.0f)).to_float(), -2.0f);
  EXPECT_EQ((half_t(1.5f) * half_t(2.0f)).to_float(), 3.0f);
  EXPECT_EQ((half_t(3.0f) / half_t(2.0f)).to_float(), 1.5f);
  EXPECT_EQ((-half_t(2.0f)).to_float(), -2.0f);
}

TEST(Half, ArithmeticRoundsResult) {
  // 2048 + 1 is not representable in half (ulp at 2048 is 2) -> RNE keeps 2048.
  EXPECT_EQ((half_t(2048.0f) + half_t(1.0f)).to_float(), 2048.0f);
  // 2048 + 3 = 2051 is exactly halfway between 2050 (odd mantissa) and
  // 2052 (even mantissa); RNE picks 2052.
  EXPECT_EQ((half_t(2048.0f) + half_t(3.0f)).to_float(), 2052.0f);
}

TEST(Half, Comparisons) {
  EXPECT_LT(half_t(1.0f), half_t(2.0f));
  EXPECT_GT(half_t(-1.0f), half_t(-2.0f));
  EXPECT_LE(half_t(1.0f), half_t(1.0f));
  EXPECT_EQ(half_t(0.0f), half_t(-0.0f));  // +0 == -0
}

TEST(Half, FmaAccumulatesInFp32) {
  // fp16 cannot hold 2048 + 1 but the fp32 accumulator can; the tensor
  // core numerics the simulator mirrors rely on this.
  float acc = 2048.0f;
  fma_fp16_fp32(acc, half_t(1.0f), half_t(1.0f));
  EXPECT_FLOAT_EQ(acc, 2049.0f);
}

TEST(Half, PrecisionIsTenBits) {
  // Conversion error of arbitrary floats is bounded by 2^-11 relative.
  for (float v : {0.1f, 0.3333f, 3.14159f, 123.456f, 0.0007f}) {
    const float r = half_t(v).to_float();
    EXPECT_NEAR(r, v, std::fabs(v) * 0x1.0p-10f) << v;
  }
}

}  // namespace
}  // namespace venom
