// Tests for SDDMM over the V:N:M pattern.
#include "spatha/sddmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {
namespace {

VnmMatrix random_structure(std::size_t rows, std::size_t cols,
                           VnmConfig cfg, std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

TEST(Sddmm, EqualsMaskedDenseProduct) {
  Rng rng(1);
  const VnmConfig cfg{4, 2, 8};
  const VnmMatrix s = random_structure(16, 32, cfg, 2);
  const HalfMatrix a = random_half_matrix(16, 12, rng);
  const HalfMatrix b = random_half_matrix(12, 32, rng);

  const VnmMatrix out = sddmm_vnm(s, a, b);
  const FloatMatrix full = gemm_dense(a, b);
  const HalfMatrix mask = s.to_dense();
  const HalfMatrix sampled = out.to_dense();
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 32; ++c) {
      if (mask(r, c).is_zero()) {
        EXPECT_TRUE(sampled(r, c).is_zero()) << r << ',' << c;
      } else {
        EXPECT_NEAR(sampled(r, c).to_float(), full(r, c),
                    0.01f + 0.02f * std::fabs(full(r, c)));
      }
    }
}

TEST(Sddmm, PreservesStructure) {
  const VnmMatrix s = random_structure(8, 16, {4, 2, 8}, 3);
  Rng rng(4);
  const HalfMatrix a = random_half_matrix(8, 4, rng);
  const HalfMatrix b = random_half_matrix(4, 16, rng);
  const VnmMatrix out = sddmm_vnm(s, a, b);
  EXPECT_EQ(out.config(), s.config());
  EXPECT_EQ(out.m_indices(), s.m_indices());
  EXPECT_EQ(out.column_locs(), s.column_locs());
}

TEST(Sddmm, OutputFeedsSpmm) {
  // The whole point: the sampled output is a valid SpMM operand.
  Rng rng(5);
  const VnmMatrix s = random_structure(16, 32, {8, 2, 8}, 6);
  const HalfMatrix a = random_half_matrix(16, 8, rng);
  const HalfMatrix b = random_half_matrix(8, 32, rng);
  const VnmMatrix sampled = sddmm_vnm(s, a, b);
  const HalfMatrix x = random_half_matrix(32, 4, rng);
  EXPECT_LT(rel_fro_error(spmm_vnm(sampled, x),
                          gemm_dense(sampled.to_dense(), x)),
            1e-5f);
}

TEST(Sddmm, ShapeChecks) {
  const VnmMatrix s = random_structure(8, 16, {4, 2, 8}, 7);
  EXPECT_THROW(sddmm_vnm(s, HalfMatrix(4, 4), HalfMatrix(4, 16)), Error);
  EXPECT_THROW(sddmm_vnm(s, HalfMatrix(8, 4), HalfMatrix(4, 8)), Error);
  EXPECT_THROW(sddmm_vnm(s, HalfMatrix(8, 4), HalfMatrix(5, 16)), Error);
}

TEST(Sddmm, AttentionGradientUseCase) {
  // Sparse-attention backward: dL/dscores = (dL/dctx)^T V sampled at the
  // kept probability positions. Verify the sampled gradient matches the
  // dense gradient at those positions.
  Rng rng(8);
  const std::size_t tq = 8, tk = 16, dh = 4;
  const VnmMatrix p_structure = random_structure(tq, tk, {2, 2, 8}, 9);
  const HalfMatrix grad_ctx_t = random_half_matrix(tq, dh, rng);  // (dL/dctx)^T
  const HalfMatrix v = random_half_matrix(dh, tk, rng);           // V (dh x Tk)
  const VnmMatrix grad_p = sddmm_vnm(p_structure, grad_ctx_t, v);
  const FloatMatrix dense_grad = gemm_dense(grad_ctx_t, v);
  const HalfMatrix gp = grad_p.to_dense();
  const HalfMatrix mask = p_structure.to_dense();
  for (std::size_t i = 0; i < tq; ++i)
    for (std::size_t k = 0; k < tk; ++k)
      if (!mask(i, k).is_zero()) {
        EXPECT_NEAR(gp(i, k).to_float(), dense_grad(i, k),
                    0.01f + 0.02f * std::fabs(dense_grad(i, k)));
      }
}

}  // namespace
}  // namespace venom::spatha
