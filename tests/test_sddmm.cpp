// Tests for SDDMM over the V:N:M pattern.
#include "spatha/sddmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {
namespace {

VnmMatrix random_structure(std::size_t rows, std::size_t cols,
                           VnmConfig cfg, std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

TEST(Sddmm, EqualsMaskedDenseProduct) {
  Rng rng(1);
  const VnmConfig cfg{4, 2, 8};
  const VnmMatrix s = random_structure(16, 32, cfg, 2);
  const HalfMatrix a = random_half_matrix(16, 12, rng);
  const HalfMatrix b = random_half_matrix(12, 32, rng);

  const VnmMatrix out = sddmm_vnm(s, a, b);
  const FloatMatrix full = gemm_dense(a, b);
  const HalfMatrix mask = s.to_dense();
  const HalfMatrix sampled = out.to_dense();
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 32; ++c) {
      if (mask(r, c).is_zero()) {
        EXPECT_TRUE(sampled(r, c).is_zero()) << r << ',' << c;
      } else {
        EXPECT_NEAR(sampled(r, c).to_float(), full(r, c),
                    0.01f + 0.02f * std::fabs(full(r, c)));
      }
    }
}

TEST(Sddmm, PreservesStructure) {
  const VnmMatrix s = random_structure(8, 16, {4, 2, 8}, 3);
  Rng rng(4);
  const HalfMatrix a = random_half_matrix(8, 4, rng);
  const HalfMatrix b = random_half_matrix(4, 16, rng);
  const VnmMatrix out = sddmm_vnm(s, a, b);
  EXPECT_EQ(out.config(), s.config());
  EXPECT_EQ(out.m_indices(), s.m_indices());
  EXPECT_EQ(out.column_locs(), s.column_locs());
}

TEST(Sddmm, OutputFeedsSpmm) {
  // The whole point: the sampled output is a valid SpMM operand.
  Rng rng(5);
  const VnmMatrix s = random_structure(16, 32, {8, 2, 8}, 6);
  const HalfMatrix a = random_half_matrix(16, 8, rng);
  const HalfMatrix b = random_half_matrix(8, 32, rng);
  const VnmMatrix sampled = sddmm_vnm(s, a, b);
  const HalfMatrix x = random_half_matrix(32, 4, rng);
  EXPECT_LT(rel_fro_error(spmm_vnm(sampled, x),
                          gemm_dense(sampled.to_dense(), x)),
            1e-5f);
}

TEST(Sddmm, ShapeChecks) {
  const VnmMatrix s = random_structure(8, 16, {4, 2, 8}, 7);
  EXPECT_THROW(sddmm_vnm(s, HalfMatrix(4, 4), HalfMatrix(4, 16)), Error);
  EXPECT_THROW(sddmm_vnm(s, HalfMatrix(8, 4), HalfMatrix(4, 8)), Error);
  EXPECT_THROW(sddmm_vnm(s, HalfMatrix(8, 4), HalfMatrix(5, 16)), Error);
}

TEST(Sddmm, FastMatchesScalarOracleWithScratchPool) {
  // The production path (packed column panels + lane-blocked dots, with
  // a caller-owned scratch pool and a tuned-style chunk grain) agrees
  // with the naive oracle on a ragged shape; repeated calls through the
  // same pool reuse the panel buffers.
  Rng rng(10);
  const VnmConfig fmt{8, 2, 10};
  const VnmMatrix s = random_structure(24, 50, fmt, 11);
  const HalfMatrix a = random_half_matrix(24, 17, rng);
  const HalfMatrix b = random_half_matrix(17, 50, rng);
  SpmmConfig cfg = select_config_heuristic(fmt, 24, 50, 17);
  cfg.chunk_grain = 2;

  SpmmScratchPool pool_scratch;
  const VnmMatrix oracle = sddmm_vnm_scalar(s, a, b);
  for (int call = 0; call < 3; ++call) {
    const VnmMatrix fast = sddmm_vnm(s, a, b, cfg, nullptr, &pool_scratch);
    ASSERT_EQ(fast.values().size(), oracle.values().size());
    for (std::size_t i = 0; i < fast.values().size(); ++i)
      EXPECT_NEAR(fast.values()[i].to_float(), oracle.values()[i].to_float(),
                  0.005f + 0.01f * std::fabs(oracle.values()[i].to_float()))
          << "call " << call << " i " << i;
  }
}

TEST(Sddmm, FixedModeSamplesSelectorColumns) {
  // Under ColumnLocMode::kFixed a nonzero with m-index j samples dense
  // column g*M + j (the Fig. 9 ablation's selector mapping), ignoring
  // the column-loc table — the exact adjoint of the kFixed forward.
  Rng rng(12);
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix s = random_structure(8, 16, fmt, 13);
  const HalfMatrix a = random_half_matrix(8, 6, rng);
  const HalfMatrix b = random_half_matrix(6, 16, rng);

  const VnmMatrix out = sddmm_vnm_scalar(s, a, b, ColumnLocMode::kFixed);
  const FloatMatrix full = gemm_dense(a, b);
  const std::size_t groups = s.groups_per_row();
  for (std::size_t r = 0; r < s.rows(); ++r)
    for (std::size_t g = 0; g < groups; ++g)
      for (std::size_t j = 0; j < fmt.n; ++j) {
        if (s.value(r, g, j).is_zero()) continue;
        const std::size_t col = g * fmt.m + s.m_index(r, g, j);
        EXPECT_NEAR(out.value(r, g, j).to_float(), full(r, col),
                    0.01f + 0.02f * std::fabs(full(r, col)))
            << r << ',' << g << ',' << j;
      }
}

TEST(Sddmm, AttentionGradientUseCase) {
  // Sparse-attention backward: dL/dscores = (dL/dctx)^T V sampled at the
  // kept probability positions. Verify the sampled gradient matches the
  // dense gradient at those positions.
  Rng rng(8);
  const std::size_t tq = 8, tk = 16, dh = 4;
  const VnmMatrix p_structure = random_structure(tq, tk, {2, 2, 8}, 9);
  const HalfMatrix grad_ctx_t = random_half_matrix(tq, dh, rng);  // (dL/dctx)^T
  const HalfMatrix v = random_half_matrix(dh, tk, rng);           // V (dh x Tk)
  const VnmMatrix grad_p = sddmm_vnm(p_structure, grad_ctx_t, v);
  const FloatMatrix dense_grad = gemm_dense(grad_ctx_t, v);
  const HalfMatrix gp = grad_p.to_dense();
  const HalfMatrix mask = p_structure.to_dense();
  for (std::size_t i = 0; i < tq; ++i)
    for (std::size_t k = 0; k < tk; ++k)
      if (!mask(i, k).is_zero()) {
        EXPECT_NEAR(gp(i, k).to_float(), dense_grad(i, k),
                    0.01f + 0.02f * std::fabs(dense_grad(i, k)));
      }
}

}  // namespace
}  // namespace venom::spatha
