// Tests for the synthetic workload generators.
#include "workloads/generators.hpp"

#include <gtest/gtest.h>

#include "baselines/gemm.hpp"
#include "baselines/spmm_csr.hpp"
#include "common/rng.hpp"
#include "format/csr.hpp"

namespace venom::workloads {
namespace {

TEST(Uniform, HitsDensity) {
  Rng rng(1);
  const HalfMatrix m = uniform_sparse(128, 128, 0.25, rng);
  EXPECT_NEAR(density(m), 0.25, 0.03);
  EXPECT_THROW(uniform_sparse(8, 8, 1.5, rng), Error);
}

TEST(Uniform, ExtremesWork) {
  Rng rng(2);
  EXPECT_DOUBLE_EQ(density(uniform_sparse(32, 32, 0.0, rng)), 0.0);
  // density 1.0: only exact float zeros from the normal draw would be
  // missing — essentially everything present.
  EXPECT_GT(density(uniform_sparse(32, 32, 1.0, rng)), 0.99);
}

TEST(Banded, NonzerosStayInBand) {
  Rng rng(3);
  const std::size_t hb = 3;
  const HalfMatrix m = banded(64, 64, hb, rng);
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c)
      if (!m(r, c).is_zero()) {
        EXPECT_LE(std::abs(int(c) - int(r)), int(hb) + 1);
      }
  EXPECT_GT(density(m), 0.0);
}

TEST(Banded, RectangularBandFollowsDiagonalSlope) {
  Rng rng(4);
  const HalfMatrix m = banded(32, 64, 2, rng);  // slope 2
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 0; c < 64; ++c)
      if (!m(r, c).is_zero()) {
        EXPECT_LE(std::abs(int(c) - 2 * int(r)), 4);
      }
}

TEST(PowerLaw, AlphaZeroIsBalanced) {
  Rng rng(5);
  const HalfMatrix m = power_law_rows(128, 256, 0.2, 0.0, rng);
  EXPECT_NEAR(density(m), 0.2, 0.03);
  EXPECT_LT(row_imbalance(m), 0.1);
}

TEST(PowerLaw, LargerAlphaMoreImbalanced) {
  Rng rng(6);
  const double i0 = row_imbalance(power_law_rows(128, 256, 0.2, 0.0, rng));
  const double i5 = row_imbalance(power_law_rows(128, 256, 0.2, 0.5, rng));
  const double i10 = row_imbalance(power_law_rows(128, 256, 0.2, 1.0, rng));
  EXPECT_LT(i0, i5);
  EXPECT_LT(i5, i10);
  EXPECT_GT(i10, 0.5);
}

TEST(PowerLaw, RejectsBadParameters) {
  Rng rng(7);
  EXPECT_THROW(power_law_rows(8, 8, 0.0, 1.0, rng), Error);
  EXPECT_THROW(power_law_rows(8, 8, 0.5, -1.0, rng), Error);
}

TEST(BlockStructured, WholeBlocksOnly) {
  Rng rng(8);
  const HalfMatrix m = block_structured(64, 64, 8, 0.3, rng);
  for (std::size_t bi = 0; bi < 8; ++bi)
    for (std::size_t bj = 0; bj < 8; ++bj) {
      std::size_t nnz = 0;
      for (std::size_t di = 0; di < 8; ++di)
        for (std::size_t dj = 0; dj < 8; ++dj)
          if (!m(bi * 8 + di, bj * 8 + dj).is_zero()) ++nnz;
      // Kept blocks are dense (modulo exact-zero normal draws),
      // dropped blocks are empty.
      EXPECT_TRUE(nnz == 0 || nnz >= 62) << bi << ',' << bj;
    }
}

TEST(RowImbalance, KnownValues) {
  HalfMatrix balanced(4, 4);
  for (std::size_t r = 0; r < 4; ++r) balanced(r, 0) = half_t(1.0f);
  EXPECT_DOUBLE_EQ(row_imbalance(balanced), 0.0);

  HalfMatrix skewed(2, 4);
  for (std::size_t c = 0; c < 4; ++c) skewed(0, c) = half_t(1.0f);
  // rows have 4 and 0 nonzeros: mean 2, std 2 -> CV 1.
  EXPECT_DOUBLE_EQ(row_imbalance(skewed), 1.0);
  EXPECT_DOUBLE_EQ(row_imbalance(HalfMatrix(4, 4)), 0.0);
}

TEST(Generators, AllFeedTheCsrKernelCorrectly) {
  // Integration: every generated structure multiplies correctly.
  Rng rng(9);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  const HalfMatrix cases[] = {
      uniform_sparse(32, 64, 0.2, rng),
      banded(32, 64, 4, rng),
      power_law_rows(32, 64, 0.3, 0.8, rng),
      block_structured(32, 64, 8, 0.4, rng),
  };
  for (const auto& a : cases) {
    EXPECT_LT(rel_fro_error(spmm_csr(CsrMatrix::from_dense(a), b),
                            gemm_dense(a, b)),
              1e-5f);
  }
}

}  // namespace
}  // namespace venom::workloads
