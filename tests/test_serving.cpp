// Tests for the serving subsystem: the blocking request queue, the
// dynamic token-budgeted batcher (continuous top-up, priority bands,
// deadline sheds, close-under-load wakeups), and the InferenceEngine —
// including the bit-identity guarantee (batched output == unbatched
// output per request) and the Request/Response surface. Generation
// (KV-cache decode) is covered by test_decode.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serving/batcher.hpp"
#include "serving/engine.hpp"
#include "serving/queue.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {
namespace {

using namespace std::chrono_literals;

transformer::ModelConfig tiny_config() {
  return transformer::ModelConfig{.name = "tiny", .layers = 2, .hidden = 32,
                                  .heads = 4, .ffn_hidden = 64, .seq_len = 16};
}

/// A pruned tiny encoder with deterministic weights.
transformer::Encoder tiny_encoder(std::uint64_t seed = 7) {
  Rng rng(seed);
  transformer::Encoder enc(tiny_config(), rng);
  enc.sparsify({8, 2, 4});
  return enc;
}

PendingRequest make_request(std::uint64_t id, std::size_t hidden,
                            std::size_t tokens, int priority = 0) {
  PendingRequest req;
  req.id = id;
  Rng rng(100 + id);
  req.request.input = random_half_matrix(hidden, tokens, rng);
  req.request.priority = priority;
  req.enqueued = Clock::now();
  return req;
}

std::future<Response> submit_input(InferenceEngine& engine, HalfMatrix x) {
  Request req;
  req.input = std::move(x);
  return engine.submit(std::move(req));
}

// ---- BlockingQueue --------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BlockingQueue, CloseRefusesPushButDrains) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // drained + closed
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&q] {
    int v = 0;
    EXPECT_FALSE(q.pop(v));  // blocks until close, then false
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

TEST(BlockingQueue, PopUntilTimesOut) {
  BlockingQueue<int> q;
  int v = 0;
  bool timed_out = false;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(v, t0 + 20ms, timed_out));
  EXPECT_TRUE(timed_out);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
}

TEST(BlockingQueue, ConcurrentProducersConsumersSeeEveryItem) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kPerProducer = 200;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        EXPECT_TRUE(q.push(p * kPerProducer + i));
    });
  for (int c = 0; c < 3; ++c)
    threads.emplace_back([&q, &sum] {
      int v = 0;
      while (q.pop(v)) sum.fetch_add(v);
    });
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t)
    threads[t].join();
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---- DynamicBatcher -------------------------------------------------------

TEST(DynamicBatcher, CoalescesUpToTokenBudget) {
  DynamicBatcher batcher({.max_batch_tokens = 8, .max_batch_requests = 16,
                          .max_wait = 50ms});
  for (std::uint64_t i = 0; i < 3; ++i) {
    PendingRequest req = make_request(i, 4, 4);  // 4 tokens each
    EXPECT_TRUE(batcher.submit(req));
  }
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);  // 4 + 4 = 8 fills the budget
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);  // the third flushes on the timer
}

TEST(DynamicBatcher, CarriesOverflowingRequestToNextBatch) {
  DynamicBatcher batcher({.max_batch_tokens = 10, .max_batch_requests = 16,
                          .max_wait = 50ms});
  PendingRequest a = make_request(1, 4, 6);
  PendingRequest b = make_request(2, 4, 6);
  ASSERT_TRUE(batcher.submit(a));
  ASSERT_TRUE(batcher.submit(b));
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));  // 6 + 6 > 10 -> b stays queued
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 1u);
  ASSERT_TRUE(batcher.next_batch(batch));  // b seeds the next batch
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 2u);
}

TEST(DynamicBatcher, OversizedRequestFormsItsOwnBatch) {
  DynamicBatcher batcher({.max_batch_tokens = 8, .max_batch_requests = 16,
                          .max_wait = 50ms});
  PendingRequest big = make_request(1, 4, 32);  // 4x the budget
  ASSERT_TRUE(batcher.submit(big));
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].tokens(), 32u);
}

TEST(DynamicBatcher, MaxWaitFlushesPartialBatch) {
  DynamicBatcher batcher({.max_batch_tokens = 1024,
                          .max_batch_requests = 16, .max_wait = 20ms});
  PendingRequest lone = make_request(1, 4, 4);
  ASSERT_TRUE(batcher.submit(lone));
  std::vector<PendingRequest> batch;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));  // far below budget: timer flushes
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(DynamicBatcher, LateArrivalJoinsFormingBatch) {
  // Continuous batching: the flush timer is generous (2 s), so the batch
  // must close on its token budget — which it can only reach if requests
  // submitted while the batch is already forming top it up.
  DynamicBatcher batcher({.max_batch_tokens = 16, .max_batch_requests = 8,
                          .max_wait = 2s});
  PendingRequest a = make_request(1, 4, 4);
  ASSERT_TRUE(batcher.submit(a));
  std::thread late([&] {
    std::this_thread::sleep_for(30ms);
    PendingRequest b = make_request(2, 4, 4);
    EXPECT_TRUE(batcher.submit(b));
    std::this_thread::sleep_for(30ms);
    PendingRequest c = make_request(3, 4, 8);  // 4 + 4 + 8 fills the budget
    EXPECT_TRUE(batcher.submit(c));
  });
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  late.join();
  ASSERT_EQ(batch.size(), 3u);  // both late arrivals joined, none split
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(batch[2].id, 3u);
}

TEST(DynamicBatcher, HigherPriorityJumpsTheQueue) {
  // Budget of one request per batch: dequeue order IS priority order.
  DynamicBatcher batcher({.max_batch_tokens = 4, .max_batch_requests = 1,
                          .max_wait = 1ms});
  PendingRequest a = make_request(1, 4, 4, /*priority=*/0);
  PendingRequest b = make_request(2, 4, 4, /*priority=*/0);
  PendingRequest c = make_request(3, 4, 4, /*priority=*/5);
  ASSERT_TRUE(batcher.submit(a));
  ASSERT_TRUE(batcher.submit(b));
  ASSERT_TRUE(batcher.submit(c));
  std::vector<PendingRequest> batch;
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher.next_batch(batch));
    ASSERT_EQ(batch.size(), 1u);
    order.push_back(batch[0].id);
  }
  // c overtakes both; a and b stay FIFO within their band.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 1, 2}));
}

TEST(DynamicBatcher, ShedsExpiredRequestsWithTypedError) {
  DynamicBatcher batcher({.max_batch_tokens = 8, .max_batch_requests = 4,
                          .max_wait = 5ms});
  PendingRequest expired = make_request(1, 4, 4);
  expired.request.deadline = Clock::now() - 1ms;  // already lapsed
  auto expired_fut = expired.result.get_future();
  ASSERT_TRUE(batcher.submit(expired));
  PendingRequest live = make_request(2, 4, 4);
  ASSERT_TRUE(batcher.submit(live));
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  ASSERT_EQ(batch.size(), 1u);  // the expired request never reaches a batch
  EXPECT_EQ(batch[0].id, 2u);
  EXPECT_EQ(batcher.shed(), 1u);
  try {
    expired_fut.get();
    FAIL() << "expired request should fail, not resolve";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kDeadlineExceeded);
  }
}

TEST(DynamicBatcher, EmptyQueueShutdownReturnsFalse) {
  DynamicBatcher batcher({.max_batch_tokens = 8, .max_batch_requests = 4,
                          .max_wait = 10ms});
  std::vector<PendingRequest> batch;
  std::thread worker([&] { EXPECT_FALSE(batcher.next_batch(batch)); });
  std::this_thread::sleep_for(10ms);
  batcher.close();  // wakes the blocked collector with no work
  worker.join();
  // A refused request must come back intact: its promise is still live,
  // so the submitter can deliver the failure through the future it
  // already handed out.
  PendingRequest late = make_request(1, 4, 4);
  auto fut = late.result.get_future();
  EXPECT_FALSE(batcher.submit(late));
  late.result.set_exception(
      std::make_exception_ptr(Error("engine is shut down")));
  EXPECT_THROW(fut.get(), Error);
}

TEST(DynamicBatcher, CloseWakesEveryBlockedWorker) {
  // Regression test for the old two-mutex design, where workers queued
  // behind the collector mutex could not be woken by close() and
  // shutdown hung. All workers now block on the condition variable with
  // the mutex released, so close() must wake every one promptly — with a
  // 10-minute flush timer, a prompt return can only come from the wakeup.
  DynamicBatcher batcher({.max_batch_tokens = 8, .max_batch_requests = 4,
                          .max_wait = 10min});
  constexpr std::size_t kWorkers = 4;
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < kWorkers; ++i)
    workers.emplace_back([&] {
      std::vector<PendingRequest> batch;
      EXPECT_FALSE(batcher.next_batch(batch));
    });
  std::this_thread::sleep_for(50ms);  // let every worker block
  const auto t0 = std::chrono::steady_clock::now();
  batcher.close();
  for (auto& w : workers) w.join();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 30s);
}

TEST(DynamicBatcher, CloseFlushesFormingBatch) {
  // A worker mid-top-up (batch seeded, waiting for company under a huge
  // flush timer) must also be woken by close() and return what it has.
  DynamicBatcher batcher({.max_batch_tokens = 64, .max_batch_requests = 8,
                          .max_wait = 10min});
  PendingRequest lone = make_request(1, 4, 4);
  ASSERT_TRUE(batcher.submit(lone));
  std::vector<PendingRequest> batch;
  std::thread worker([&] {
    EXPECT_TRUE(batcher.next_batch(batch));  // returns the partial batch
    std::vector<PendingRequest> next;
    EXPECT_FALSE(batcher.next_batch(next));  // then drained + closed
  });
  std::this_thread::sleep_for(50ms);  // let the worker enter top-up
  const auto t0 = std::chrono::steady_clock::now();
  batcher.close();
  worker.join();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 30s);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 1u);
}

TEST(DynamicBatcher, DrainsQueuedWorkAfterClose) {
  DynamicBatcher batcher({.max_batch_tokens = 4, .max_batch_requests = 4,
                          .max_wait = 10ms});
  PendingRequest a = make_request(1, 4, 4);
  PendingRequest b = make_request(2, 4, 4);
  ASSERT_TRUE(batcher.submit(a));
  ASSERT_TRUE(batcher.submit(b));
  batcher.close();
  std::vector<PendingRequest> batch;
  std::size_t seen = 0;
  while (batcher.next_batch(batch)) seen += batch.size();
  EXPECT_EQ(seen, 2u);
}

// ---- InferenceEngine ------------------------------------------------------

TEST(InferenceEngine, OutputsBitIdenticalToUnbatchedForward) {
  transformer::Encoder enc = tiny_encoder();
  // References computed through the plain forward() before the engine
  // takes ownership.
  std::vector<HalfMatrix> inputs, refs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Rng rng(200 + i);
    inputs.push_back(random_half_matrix(32, 4 + 4 * (i % 3), rng));
    refs.push_back(enc.forward(inputs.back()));
  }

  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 16,
                                       .max_batch_requests = 8,
                                       .max_wait = 5ms}});
  std::vector<std::future<Response>> futs;
  for (const HalfMatrix& x : inputs) futs.push_back(submit_input(engine, x));
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Response r = futs[i].get();
    ASSERT_EQ(r.output.rows(), refs[i].rows());
    ASSERT_EQ(r.output.cols(), refs[i].cols());
    for (std::size_t e = 0; e < r.output.size(); ++e)
      ASSERT_EQ(r.output.flat()[e].bits(), refs[i].flat()[e].bits())
          << "request " << i << " element " << e;
    EXPECT_EQ(r.replica, 0u);  // a bare engine is replica 0
    EXPECT_GE(r.batch_tokens, r.output.cols());
  }
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 6u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.plan_cache_hits + stats.plan_cache_misses, 0u);
}

TEST(InferenceEngine, ConcurrentSubmitFromManyThreads) {
  constexpr std::size_t kThreads = 4, kPerThread = 8;
  transformer::Encoder enc = tiny_encoder(11);
  std::vector<HalfMatrix> inputs(kThreads * kPerThread);
  std::vector<HalfMatrix> refs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Rng rng(300 + i);
    inputs[i] = random_half_matrix(32, 4, rng);
    refs[i] = enc.forward(inputs[i]);
  }

  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 24,
                                       .max_batch_requests = 6,
                                       .max_wait = 2ms},
                          .workers = 2});
  std::vector<std::future<Response>> futs(inputs.size());
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t idx = t * kPerThread + i;
        futs[idx] = submit_input(engine, inputs[idx]);
      }
    });
  for (auto& s : submitters) s.join();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Response r = futs[i].get();
    for (std::size_t e = 0; e < r.output.size(); ++e)
      ASSERT_EQ(r.output.flat()[e].bits(), refs[i].flat()[e].bits()) << i;
  }
  EXPECT_EQ(engine.stats().requests, inputs.size());
}

TEST(InferenceEngine, ShutdownDrainsQueuedRequests) {
  transformer::Encoder enc = tiny_encoder(13);
  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 8,
                                       .max_batch_requests = 2,
                                       .max_wait = 1ms}});
  std::vector<std::future<Response>> futs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Rng rng(400 + i);
    futs.push_back(submit_input(engine, random_half_matrix(32, 4, rng)));
  }
  engine.shutdown();
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // all served, none dropped
  Rng rng(999);
  try {
    submit_input(engine, random_half_matrix(32, 4, rng));
    FAIL() << "submit after shutdown should throw";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kShutdown);
  }
}

TEST(InferenceEngine, CloseUnderLoadResolvesEveryFuture) {
  // Shutdown while multiple workers are mid-stream: every submitted
  // request's future must resolve (served — never silently dropped), the
  // join must be prompt even though the flush timer is huge, and the
  // load gauge must return to zero.
  transformer::Encoder enc = tiny_encoder(29);
  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 8,
                                       .max_batch_requests = 2,
                                       .max_wait = 10min},
                          .workers = 4});
  std::vector<std::future<Response>> futs;
  for (std::uint64_t i = 0; i < 16; ++i) {
    Rng rng(600 + i);
    futs.push_back(submit_input(engine, random_half_matrix(32, 4, rng)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  engine.shutdown();  // drains the queue, wakes all 4 workers, joins them
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 60s);
  for (auto& f : futs) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(engine.load_tokens(), 0u);
  EXPECT_EQ(engine.stats().requests, futs.size());
}

TEST(InferenceEngine, PastDeadlineIsShedNotExecuted) {
  transformer::Encoder enc = tiny_encoder(31);
  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 8,
                                       .max_batch_requests = 2,
                                       .max_wait = 1ms}});
  Rng rng(700);
  Request req;
  req.input = random_half_matrix(32, 4, rng);
  req.deadline = Clock::now() - 1ms;  // lapsed before it can run
  auto fut = engine.submit(std::move(req));
  try {
    fut.get();
    FAIL() << "a lapsed-deadline request should be shed";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kDeadlineExceeded);
  }
  EXPECT_EQ(engine.stats().shed, 1u);
  // The gauge unwinds through on_done even for sheds.
  EXPECT_EQ(engine.load_tokens(), 0u);
}

TEST(InferenceEngine, RejectsWrongFeatureCount) {
  InferenceEngine engine(tiny_encoder(17), {});
  Rng rng(1);
  EXPECT_THROW(submit_input(engine, random_half_matrix(16, 4, rng)), Error);
  EXPECT_THROW(submit_input(engine, HalfMatrix(32, 0)), Error);
}

TEST(InferenceEngine, BadRequestRejectedAtSubmitNotInBatch) {
  // Dynamic score sparsity needs tokens % 4 == 0; a 5-token request is
  // rejected at submit() — before it can enter a batch and fail the
  // futures of well-formed requests coalesced with it — and the engine
  // keeps serving.
  transformer::Encoder enc = tiny_encoder(19);
  enc.set_dynamic_score_sparsity(NmPattern{2, 4});
  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 16,
                                       .max_batch_requests = 4,
                                       .max_wait = 1ms}});
  Rng rng(2);
  EXPECT_THROW(submit_input(engine, random_half_matrix(32, 5, rng)), Error);
  auto good = submit_input(engine, random_half_matrix(32, 4, rng));
  EXPECT_NO_THROW(good.get());
}

TEST(InferenceEngine, SteadyStateReusesPlansAndArena) {
  transformer::Encoder enc = tiny_encoder(23);
  InferenceEngine engine(std::move(enc),
                         {.batching = {.max_batch_tokens = 8,
                                       .max_batch_requests = 2,
                                       .max_wait = 1ms}});
  for (int round = 0; round < 8; ++round) {
    Rng rng(500 + round);
    submit_input(engine, random_half_matrix(32, 8, rng)).get();
  }
  const ServingStats stats = engine.stats();
  // Each sparse layer misses once per batch width, then hits forever.
  EXPECT_GT(stats.plan_cache_hits, stats.plan_cache_misses);
  EXPECT_GT(stats.peak_arena_bytes, 0u);
  EXPECT_GT(stats.timing.gemm_s, 0.0);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
}

TEST(InferenceEngine, ResponseCarriesServingTelemetry) {
  InferenceEngine engine(tiny_encoder(37), {});
  Rng rng(800);
  Request req;
  req.input = random_half_matrix(32, 4, rng);
  req.tenant = "telemetry";
  const Response r = engine.submit(std::move(req)).get();
  EXPECT_GT(r.id, 0u);
  EXPECT_GE(r.queue_ms, 0.0);
  EXPECT_GT(r.exec_ms, 0.0);
  EXPECT_GE(r.batch_tokens, 4u);
}

}  // namespace
}  // namespace venom::serving
