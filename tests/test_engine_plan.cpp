// Tests for the persisted engine plan (serving/plan.hpp): JSON
// round-trip fidelity, the apply() contracts on Options and Encoder
// (including the graceful foreign-fingerprint ignore), the throwing
// load paths, and the end-to-end Options::plan_path fold performed by
// the InferenceEngine constructors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "serving/engine.hpp"
#include "serving/plan.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {
namespace {

transformer::ModelConfig tiny_config() {
  return transformer::ModelConfig{.name = "tiny", .layers = 2, .hidden = 32,
                                  .heads = 4, .ffn_hidden = 64, .seq_len = 16};
}

/// A pruned tiny encoder (reduced weight dtypes require sparse weights).
transformer::Encoder tiny_encoder(std::uint64_t seed = 7) {
  Rng rng(seed);
  transformer::Encoder enc(tiny_config(), rng);
  enc.sparsify({8, 2, 4});
  return enc;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// A fully-populated plan fingerprinted for THIS build, so apply()
/// fires. Tests that need a foreign plan overwrite `features`.
EnginePlan sample_plan() {
  EnginePlan plan;
  plan.model = "tiny";
  plan.features = cpu_feature_string();
  plan.max_batch_tokens = 96;
  plan.workers = 2;
  plan.measured_rps = 1234.5;
  plan.layers = {{"vnm-int8", ops::Dtype::kI8},
                 {"vnm-fast", ops::Dtype::kF16}};
  return plan;
}

TEST(EnginePlan, SaveLoadRoundTripPreservesEveryField) {
  EnginePlan plan = sample_plan();
  plan.layers.push_back({"vnm-fp8", ops::Dtype::kF8E5M2});
  const std::string path = temp_path("engine_plan_roundtrip.json");
  save_engine_plan(plan, path);

  const EnginePlan loaded = load_engine_plan(path);
  EXPECT_EQ(loaded.model, plan.model);
  EXPECT_EQ(loaded.features, plan.features);
  EXPECT_EQ(loaded.max_batch_tokens, plan.max_batch_tokens);
  EXPECT_EQ(loaded.workers, plan.workers);
  EXPECT_DOUBLE_EQ(loaded.measured_rps, plan.measured_rps);
  ASSERT_EQ(loaded.layers.size(), plan.layers.size());
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    EXPECT_EQ(loaded.layers[i].backend, plan.layers[i].backend) << i;
    EXPECT_EQ(loaded.layers[i].dtype, plan.layers[i].dtype) << i;
  }
}

TEST(EnginePlan, ApplyFoldsMeasuredKnobsIntoOptions) {
  const EnginePlan plan = sample_plan();
  Options opts;
  ASSERT_TRUE(plan.apply(opts));
  EXPECT_EQ(opts.batching.max_batch_tokens, 96u);
  EXPECT_EQ(opts.workers, 2u);

  // Untuned knobs (0) leave the caller's options alone.
  EnginePlan partial = sample_plan();
  partial.max_batch_tokens = 0;
  partial.workers = 0;
  Options defaults;
  const std::size_t budget = defaults.batching.max_batch_tokens;
  ASSERT_TRUE(partial.apply(defaults));
  EXPECT_EQ(defaults.batching.max_batch_tokens, budget);
  EXPECT_EQ(defaults.workers, 1u);
}

TEST(EnginePlan, ForeignFingerprintIsIgnoredGracefully) {
  EnginePlan plan = sample_plan();
  plan.features = "some-other-machine";
  EXPECT_FALSE(plan.compatible());

  Options opts;
  const std::size_t budget = opts.batching.max_batch_tokens;
  EXPECT_FALSE(plan.apply(opts));
  EXPECT_EQ(opts.batching.max_batch_tokens, budget);
  EXPECT_EQ(opts.workers, 1u);

  transformer::Encoder enc = tiny_encoder();
  EXPECT_FALSE(plan.apply(enc));
  EXPECT_EQ(enc.layer(0).ffn_in().weight_dtype(), ops::Dtype::kF16);
}

TEST(EnginePlan, ApplyEncoderSetsPerLayerDtypes) {
  EnginePlan plan = sample_plan();
  // More plan layers than encoder layers: the extras are ignored.
  plan.layers.push_back({"vnm-fp8", ops::Dtype::kF8E5M2});
  transformer::Encoder enc = tiny_encoder();
  ASSERT_EQ(enc.layer_count(), 2u);
  ASSERT_TRUE(plan.apply(enc));
  EXPECT_EQ(enc.layer(0).ffn_in().weight_dtype(), ops::Dtype::kI8);
  EXPECT_EQ(enc.layer(1).ffn_in().weight_dtype(), ops::Dtype::kF16);
}

TEST(EnginePlan, LoadThrowsOnMissingOrCorruptFiles) {
  EXPECT_THROW(load_engine_plan(temp_path("no_such_plan.json")), Error);

  // A valid JSON document that is not an engine plan.
  const std::string foreign = temp_path("engine_plan_foreign.json");
  {
    std::string text = "{\"format\": \"venom-tune-cache\", \"version\": 1}";
    FILE* f = std::fopen(foreign.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW(load_engine_plan(foreign), Error);

  // Version from the future.
  EnginePlan plan = sample_plan();
  const std::string versioned = temp_path("engine_plan_version.json");
  save_engine_plan(plan, versioned);
  {
    std::ifstream in(versioned);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::size_t at = text.find("\"version\": 1");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 12, "\"version\": 9");
    std::ofstream out(versioned, std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(load_engine_plan(versioned), Error);

  // Unknown layer dtype name.
  const std::string bad_dtype = temp_path("engine_plan_bad_dtype.json");
  save_engine_plan(plan, bad_dtype);
  {
    std::ifstream in(bad_dtype);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::size_t at = text.find("\"int8\"");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 6, "\"int3\"");
    std::ofstream out(bad_dtype, std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(load_engine_plan(bad_dtype), Error);
}

TEST(EnginePlan, OptionsWithPlanFoldsOnlyWhenPathIsSet) {
  const std::string path = temp_path("engine_plan_fold.json");
  save_engine_plan(sample_plan(), path);

  Options bare;
  const std::size_t budget = bare.batching.max_batch_tokens;
  Options untouched = options_with_plan(bare);
  EXPECT_EQ(untouched.batching.max_batch_tokens, budget);

  Options with;
  with.plan_path = path;
  Options folded = options_with_plan(with);
  EXPECT_EQ(folded.batching.max_batch_tokens, 96u);
  EXPECT_EQ(folded.workers, 2u);

  Options missing;
  missing.plan_path = temp_path("no_such_plan_either.json");
  EXPECT_THROW(options_with_plan(missing), Error);
}

TEST(EnginePlan, EngineConstructorHonorsPlanPath) {
  const std::string path = temp_path("engine_plan_ctor.json");
  save_engine_plan(sample_plan(), path);

  Options opts;
  opts.plan_path = path;
  InferenceEngine engine(tiny_encoder(), opts);
  // The measured knobs landed in the engine's options...
  EXPECT_EQ(engine.options().batching.max_batch_tokens, 96u);
  EXPECT_EQ(engine.options().workers, 2u);
  // ...and the per-layer dtypes landed on the (then-mutable) encoder.
  EXPECT_EQ(engine.encoder().layer(0).ffn_in().weight_dtype(),
            ops::Dtype::kI8);
  EXPECT_EQ(engine.encoder().layer(1).ffn_in().weight_dtype(),
            ops::Dtype::kF16);

  // The planned engine still serves.
  Rng rng(11);
  Request req;
  req.input = random_half_matrix(32, 4, rng);
  Response resp = engine.submit(std::move(req)).get();
  EXPECT_EQ(resp.output.rows(), 32u);
  EXPECT_EQ(resp.output.cols(), 4u);
  engine.shutdown();
}

}  // namespace
}  // namespace venom::serving
