// Tests for the V:N:M (VENOM) format — the paper's core contribution.
#include "format/vnm.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.hpp"
#include "format/nm.hpp"

namespace venom {
namespace {

TEST(VnmConfig, SparsityAndSelection) {
  EXPECT_DOUBLE_EQ((VnmConfig{64, 2, 8}).sparsity(), 0.75);
  EXPECT_DOUBLE_EQ((VnmConfig{128, 2, 10}).sparsity(), 0.8);
  EXPECT_DOUBLE_EQ((VnmConfig{128, 2, 100}).sparsity(), 0.98);
  EXPECT_EQ((VnmConfig{64, 2, 8}).selected_cols(), 4u);
  // Degenerate m=4 keeps all columns -> plain 2:4.
  EXPECT_EQ((VnmConfig{64, 2, 4}).selected_cols(), 4u);
}

TEST(VnmMatrix, MagnitudePruneConformsAndRoundTrips) {
  Rng rng(1);
  const HalfMatrix dense = random_half_matrix(8, 16, rng);
  const VnmConfig cfg{4, 2, 8};
  const VnmMatrix v = VnmMatrix::from_dense_magnitude(dense, cfg);
  const HalfMatrix pruned = v.to_dense();
  EXPECT_TRUE(VnmMatrix::conforms(pruned, cfg));
  // Re-compressing the pruned matrix reproduces it exactly.
  EXPECT_TRUE(VnmMatrix::compress(pruned, cfg).to_dense() == pruned);
  EXPECT_NEAR(density(pruned), 0.25, 1e-9);
}

TEST(VnmMatrix, KeptValuesComeFromDense) {
  Rng rng(2);
  const HalfMatrix dense = random_half_matrix(8, 16, rng);
  const VnmMatrix v = VnmMatrix::from_dense_magnitude(dense, {4, 2, 8});
  const HalfMatrix pruned = v.to_dense();
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (!pruned(r, c).is_zero()) {
        EXPECT_EQ(pruned(r, c).bits(), dense(r, c).bits());
      }
}

TEST(VnmMatrix, ColumnLocSortedUniqueWithinGroup) {
  Rng rng(3);
  const VnmConfig cfg{8, 2, 10};
  const VnmMatrix v =
      VnmMatrix::from_dense_magnitude(random_half_matrix(16, 40, rng), cfg);
  for (std::size_t br = 0; br < v.block_rows(); ++br)
    for (std::size_t g = 0; g < v.groups_per_row(); ++g) {
      std::set<std::uint8_t> seen;
      std::uint8_t prev = 0;
      for (std::size_t s = 0; s < cfg.selected_cols(); ++s) {
        const std::uint8_t c = v.column_loc(br, g, s);
        EXPECT_LT(c, cfg.m);
        if (s > 0) {
          EXPECT_GT(c, prev);
        }
        prev = c;
        seen.insert(c);
      }
      EXPECT_EQ(seen.size(), cfg.selected_cols());
    }
}

TEST(VnmMatrix, NonzerosConfinedToSelectedColumns) {
  Rng rng(4);
  const VnmConfig cfg{4, 2, 8};
  const VnmMatrix v =
      VnmMatrix::from_dense_magnitude(random_half_matrix(8, 32, rng), cfg);
  const HalfMatrix pruned = v.to_dense();
  for (std::size_t br = 0; br < v.block_rows(); ++br)
    for (std::size_t g = 0; g < v.groups_per_row(); ++g) {
      std::set<std::size_t> selected;
      for (std::size_t s = 0; s < 4; ++s)
        selected.insert(g * cfg.m + v.column_loc(br, g, s));
      for (std::size_t dr = 0; dr < cfg.v; ++dr)
        for (std::size_t dc = 0; dc < cfg.m; ++dc) {
          const std::size_t r = br * cfg.v + dr;
          const std::size_t c = g * cfg.m + dc;
          if (!pruned(r, c).is_zero()) {
            EXPECT_TRUE(selected.count(c)) << "(" << r << ',' << c << ")";
          }
        }
    }
}

TEST(VnmMatrix, Gathered24ViewIsNative24) {
  // The reduction at the heart of the paper: after the column-loc gather,
  // the remaining pattern is exactly the hardware 2:4.
  Rng rng(5);
  const VnmConfig cfg{8, 2, 16};
  const VnmMatrix v =
      VnmMatrix::from_dense_magnitude(random_half_matrix(16, 64, rng), cfg);
  const HalfMatrix gathered = v.gathered_24_view();
  EXPECT_EQ(gathered.cols(), v.groups_per_row() * 4);
  EXPECT_TRUE(NmMatrix::conforms(gathered, {2, 4}));
  // Lossless: total energy is preserved by the gather.
  EXPECT_DOUBLE_EQ(l1_energy(gathered), l1_energy(v.to_dense()));
}

TEST(VnmMatrix, DenseColumnMapsThroughColumnLoc) {
  Rng rng(6);
  const VnmConfig cfg{4, 2, 8};
  const VnmMatrix v =
      VnmMatrix::from_dense_magnitude(random_half_matrix(8, 24, rng), cfg);
  const HalfMatrix pruned = v.to_dense();
  for (std::size_t r = 0; r < v.rows(); ++r)
    for (std::size_t g = 0; g < v.groups_per_row(); ++g)
      for (std::size_t j = 0; j < cfg.n; ++j) {
        if (v.value(r, g, j).is_zero()) continue;
        const std::size_t c = v.dense_column(r, g, j);
        EXPECT_EQ(pruned(r, c).bits(), v.value(r, g, j).bits());
      }
}

TEST(VnmMatrix, CompressRejectsTooManyColumns) {
  // 5 occupied columns in one 2x8 block exceeds the 4-column budget.
  HalfMatrix bad(2, 8);
  for (std::size_t c = 0; c < 5; ++c) bad(0, c) = half_t(1.0f);
  EXPECT_THROW(VnmMatrix::compress(bad, {2, 2, 8}), Error);
  EXPECT_FALSE(VnmMatrix::conforms(bad, {2, 2, 8}));
}

TEST(VnmMatrix, CompressRejectsTooManyRowNonzeros) {
  HalfMatrix bad(2, 8);
  bad(0, 0) = half_t(1.0f);
  bad(0, 1) = half_t(1.0f);
  bad(0, 2) = half_t(1.0f);  // 3 nonzeros in one row with N=2
  EXPECT_THROW(VnmMatrix::compress(bad, {2, 2, 8}), Error);
}

TEST(VnmMatrix, RejectsBadShapes) {
  HalfMatrix m(6, 16);
  EXPECT_THROW(VnmMatrix::from_dense_magnitude(m, {4, 2, 8}), Error);  // 6%4
  HalfMatrix m2(8, 12);
  EXPECT_THROW(VnmMatrix::from_dense_magnitude(m2, {4, 2, 8}), Error);  // 12%8
  EXPECT_THROW(VnmMatrix::from_dense_magnitude(HalfMatrix(8, 16), {4, 0, 8}),
               Error);
}

TEST(VnmMatrix, V1DegeneratesToRowwiseSelection) {
  // With V=1 the vector-wise stage selects per-row columns: strictly more
  // freedom, so retained energy must be >= any larger V.
  Rng rng(7);
  const HalfMatrix dense = random_half_matrix(16, 32, rng);
  const double e1 = l1_energy(
      VnmMatrix::from_dense_magnitude(dense, {1, 2, 8}).to_dense());
  const double e16 = l1_energy(
      VnmMatrix::from_dense_magnitude(dense, {16, 2, 8}).to_dense());
  EXPECT_GE(e1, e16);
}

TEST(VnmMatrix, CompressedBytesShrinkWithM) {
  Rng rng(8);
  const HalfMatrix dense = random_half_matrix(64, 320, rng);
  const auto v8 = VnmMatrix::from_dense_magnitude(dense, {32, 2, 8});
  const auto v16 = VnmMatrix::from_dense_magnitude(dense, {32, 2, 16});
  EXPECT_LT(v16.compressed_bytes(), v8.compressed_bytes());
  EXPECT_LT(v8.compressed_bytes(), dense.size() * 2);
}

TEST(VnmMatrix, N1KeepsSingleValuePerGroup) {
  Rng rng(20);
  const VnmConfig cfg{4, 1, 8};
  const VnmMatrix v =
      VnmMatrix::from_dense_magnitude(random_half_matrix(8, 32, rng), cfg);
  const HalfMatrix pruned = v.to_dense();
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t g = 0; g < 4; ++g) {
      std::size_t count = 0;
      for (std::size_t c = 0; c < 8; ++c)
        if (!pruned(r, g * 8 + c).is_zero()) ++count;
      EXPECT_EQ(count, 1u);
    }
}

TEST(VnmMatrix, EntirelyZeroInputCompresses) {
  const HalfMatrix zero(8, 16);
  const VnmConfig cfg{4, 2, 8};
  EXPECT_TRUE(VnmMatrix::conforms(zero, cfg));
  const VnmMatrix v = VnmMatrix::compress(zero, cfg);
  EXPECT_TRUE(v.to_dense() == zero);
  // Metadata stays valid even with nothing stored.
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t g = 0; g < 2; ++g)
      for (std::size_t j = 0; j < 2; ++j)
        EXPECT_LT(v.m_index(r, g, j), 4);
}

TEST(VnmMatrix, SingleBlockMatrix) {
  Rng rng(21);
  const VnmConfig cfg{8, 2, 8};
  const HalfMatrix dense = random_half_matrix(8, 8, rng);  // exactly one block
  const VnmMatrix v = VnmMatrix::from_dense_magnitude(dense, cfg);
  EXPECT_EQ(v.block_rows(), 1u);
  EXPECT_EQ(v.groups_per_row(), 1u);
  EXPECT_TRUE(VnmMatrix::compress(v.to_dense(), cfg).to_dense() ==
              v.to_dense());
}

// Property sweep: round-trip + conformance + density across the paper's
// configuration space.
class VnmConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(VnmConfigSweep, PruneCompressRoundTrip) {
  const auto [v, n, m] = GetParam();
  const VnmConfig cfg{std::size_t(v), std::size_t(n), std::size_t(m)};
  Rng rng(100 + std::size_t(v) * 7 + std::size_t(m));
  const HalfMatrix dense =
      random_half_matrix(std::size_t(v) * 2, std::size_t(m) * 4, rng);
  const VnmMatrix vm = VnmMatrix::from_dense_magnitude(dense, cfg);
  const HalfMatrix pruned = vm.to_dense();
  EXPECT_TRUE(VnmMatrix::conforms(pruned, cfg));
  EXPECT_TRUE(VnmMatrix::compress(pruned, cfg).to_dense() == pruned);
  EXPECT_NEAR(density(pruned), cfg.n / double(cfg.m), 0.05);
  EXPECT_EQ(vm.nnz(), pruned.rows() * (pruned.cols() / cfg.m) * cfg.n);
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, VnmConfigSweep,
    ::testing::Values(std::make_tuple(1, 2, 8), std::make_tuple(16, 2, 8),
                      std::make_tuple(32, 2, 8), std::make_tuple(64, 2, 8),
                      std::make_tuple(8, 2, 10), std::make_tuple(8, 2, 16),
                      std::make_tuple(8, 2, 20), std::make_tuple(4, 2, 40),
                      std::make_tuple(8, 1, 8), std::make_tuple(8, 2, 4),
                      std::make_tuple(16, 2, 32), std::make_tuple(4, 2, 100)));

}  // namespace
}  // namespace venom
