// Tests for the horizontally scaled serving layer: the EngineGroup
// router (shared const weights, least-queued-tokens routing), the
// AdmissionController (per-tenant token buckets, global in-flight
// bounds), and serving::Options validation.
//
// The load-bearing guarantee is bit-identity under scale: a request
// routed across 4 replicas produces exactly the bits of the same request
// on a 1-replica group, which produces exactly the bits of a direct
// Encoder::forward — replication must change capacity, never results.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serving/admission.hpp"
#include "serving/options.hpp"
#include "serving/router.hpp"
#include "transformer/config.hpp"
#include "transformer/encoder.hpp"

namespace venom::serving {
namespace {

using namespace std::chrono_literals;

transformer::ModelConfig tiny_config() {
  return transformer::ModelConfig{.name = "tiny", .layers = 2, .hidden = 32,
                                  .heads = 4, .ffn_hidden = 64, .seq_len = 16};
}

transformer::Encoder tiny_encoder(std::uint64_t seed = 7) {
  Rng rng(seed);
  transformer::Encoder enc(tiny_config(), rng);
  enc.sparsify({8, 2, 4});
  return enc;
}

std::future<Response> submit_input(EngineGroup& group, HalfMatrix x,
                                   const std::string& tenant = "default") {
  Request req;
  req.input = std::move(x);
  req.tenant = tenant;
  return group.submit(std::move(req));
}

// ---- AdmissionController --------------------------------------------------

TEST(AdmissionController, UnlimitedTenantRidesGlobalBoundOnly) {
  AdmissionPolicy policy;
  policy.max_queued_tokens = 10;
  policy.max_queued_requests = 0;  // unbounded request count
  AdmissionController ctrl(policy);
  ctrl.admit("a", 6);
  ctrl.admit("b", 4);  // 10/10 tokens in flight
  try {
    ctrl.admit("c", 1);
    FAIL() << "global token bound should reject";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kQueueFull);
  }
  ctrl.release(4);
  EXPECT_NO_THROW(ctrl.admit("c", 1));  // released capacity readmits
  const AdmissionStats s = ctrl.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rejected_queue, 1u);
  EXPECT_EQ(s.inflight_tokens, 7u);
  EXPECT_EQ(s.inflight_requests, 2u);
}

TEST(AdmissionController, TokenBucketRateLimitsOneTenantNotOthers) {
  AdmissionPolicy policy;
  policy.tenants["limited"] = {.tokens_per_s = 1.0, .burst_tokens = 8.0};
  AdmissionController ctrl(policy);
  // A fresh bucket starts with its full burst: the first 8 tokens pass.
  EXPECT_NO_THROW(ctrl.admit("limited", 8));
  // The bucket is empty and refills at 1 token/s — an immediate second
  // request is over budget...
  try {
    ctrl.admit("limited", 8);
    FAIL() << "empty bucket should rate-limit";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kRateLimited);
  }
  // ...while an unlimited tenant (and the default policy) is untouched.
  EXPECT_NO_THROW(ctrl.admit("free", 64));
  const AdmissionStats s = ctrl.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected_rate, 1u);
}

TEST(AdmissionController, BucketRefillsOverTime) {
  AdmissionPolicy policy;
  // 1000 tokens/s so the refill is visible within test time.
  policy.tenants["t"] = {.tokens_per_s = 1000.0, .burst_tokens = 4.0};
  AdmissionController ctrl(policy);
  EXPECT_NO_THROW(ctrl.admit("t", 4));  // drains the burst
  EXPECT_THROW(ctrl.admit("t", 4), AdmissionError);
  std::this_thread::sleep_for(20ms);  // refills ~20 tokens, capped at 4
  EXPECT_NO_THROW(ctrl.admit("t", 4));
}

// ---- Options validation ---------------------------------------------------

TEST(Options, ValidateRejectsDegenerateConfigs) {
  const auto broken = [](auto mutate) {
    Options opts;
    mutate(opts);
    return opts;
  };
  EXPECT_THROW(broken([](Options& o) { o.batching.max_batch_tokens = 0; })
                   .validate(),
               Error);
  EXPECT_THROW(broken([](Options& o) { o.batching.max_batch_requests = 0; })
                   .validate(),
               Error);
  EXPECT_THROW(broken([](Options& o) { o.workers = 0; }).validate(), Error);
  EXPECT_THROW(broken([](Options& o) { o.latency_window = 0; }).validate(),
               Error);
  EXPECT_THROW(broken([](Options& o) { o.replicas = 0; }).validate(), Error);
  // A positive rate with zero burst admits nothing, ever.
  EXPECT_THROW(broken([](Options& o) {
                 o.admission.tenants["t"] = {.tokens_per_s = 5.0,
                                             .burst_tokens = 0.0};
               }).validate(),
               Error);
  EXPECT_NO_THROW(Options{}.validate());
}

TEST(Options, ConstructorsRejectInvalidOptions) {
  Options zero_replicas;
  zero_replicas.replicas = 0;
  EXPECT_THROW(EngineGroup(tiny_encoder(), zero_replicas), Error);
  Options zero_budget;
  zero_budget.batching.max_batch_tokens = 0;
  EXPECT_THROW(InferenceEngine(tiny_encoder(), zero_budget), Error);
}

// ---- EngineGroup ----------------------------------------------------------

TEST(EngineGroup, RoutedOutputsBitIdenticalAcrossReplicaCounts) {
  // The scaled-serving acceptance bar: direct forward, a 1-replica
  // group, and a 4-replica group must agree bit for bit on every
  // request, whatever replica or batch served it.
  std::vector<HalfMatrix> inputs;
  std::vector<HalfMatrix> refs;
  {
    transformer::Encoder ref_enc = tiny_encoder();
    for (std::uint64_t i = 0; i < 24; ++i) {
      Rng rng(200 + i);
      inputs.push_back(random_half_matrix(32, 4 + 4 * (i % 3), rng));
      refs.push_back(ref_enc.forward(inputs.back()));
    }
  }

  const auto run_group = [&](std::size_t replicas) {
    Options opts;
    opts.batching.max_batch_tokens = 16;
    opts.batching.max_batch_requests = 8;
    opts.batching.max_wait = 2ms;
    opts.replicas = replicas;
    EngineGroup group(tiny_encoder(), opts);
    std::vector<std::future<Response>> futs;
    futs.reserve(inputs.size());
    for (const HalfMatrix& x : inputs) futs.push_back(submit_input(group, x));
    std::vector<Response> outs;
    outs.reserve(futs.size());
    for (auto& f : futs) outs.push_back(f.get());
    return outs;
  };

  const std::vector<Response> one = run_group(1);
  const std::vector<Response> four = run_group(4);
  ASSERT_EQ(one.size(), refs.size());
  ASSERT_EQ(four.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ASSERT_EQ(one[i].output.size(), refs[i].size()) << i;
    ASSERT_EQ(four[i].output.size(), refs[i].size()) << i;
    for (std::size_t e = 0; e < refs[i].size(); ++e) {
      ASSERT_EQ(one[i].output.flat()[e].bits(), refs[i].flat()[e].bits())
          << "replicas=1 request " << i << " element " << e;
      ASSERT_EQ(four[i].output.flat()[e].bits(), refs[i].flat()[e].bits())
          << "replicas=4 request " << i << " element " << e;
    }
  }
}

TEST(EngineGroup, SharesOneEncoderAcrossReplicas) {
  auto encoder =
      std::make_shared<const transformer::Encoder>(tiny_encoder());
  Options opts;
  opts.replicas = 3;
  EngineGroup group(encoder, opts);
  EXPECT_EQ(group.replica_count(), 3u);
  // No weight replication: every replica serves from the same object.
  for (std::size_t i = 0; i < group.replica_count(); ++i) {
    EXPECT_EQ(&group.replica(i).encoder(), encoder.get());
    EXPECT_EQ(group.replica(i).replica_id(), i);
  }
}

TEST(EngineGroup, SpreadsLoadAcrossReplicas) {
  Options opts;
  opts.batching.max_batch_tokens = 4;  // one request per batch
  opts.batching.max_batch_requests = 1;
  opts.batching.max_wait = 1ms;
  opts.replicas = 4;
  EngineGroup group(tiny_encoder(11), opts);
  std::vector<std::future<Response>> futs;
  for (std::uint64_t i = 0; i < 32; ++i) {
    Rng rng(300 + i);
    futs.push_back(submit_input(group, random_half_matrix(32, 4, rng)));
  }
  for (auto& f : futs) f.get();
  // Least-queued-tokens routing: a burst of identical requests cannot
  // pile onto one replica while others idle. Exact splits depend on
  // completion timing; the invariant is that more than one replica
  // worked.
  const GroupStats stats = group.stats();
  EXPECT_EQ(stats.requests, futs.size());
  std::size_t active = 0;
  for (const ServingStats& s : stats.replicas) active += s.requests > 0;
  EXPECT_GT(active, 1u);
}

TEST(EngineGroup, QueueFullShedsAndReleaseReadmits) {
  Options opts;
  opts.batching.max_batch_tokens = 8;
  opts.batching.max_wait = 1ms;
  opts.replicas = 2;
  opts.admission.max_queued_tokens = 8;  // two 4-token requests in flight
  EngineGroup group(tiny_encoder(13), opts);

  // Hold the group's admission budget with requests (deliberately using
  // the whole bound), then overflow it.
  std::vector<std::future<Response>> held;
  std::size_t shed = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng rng(400 + i);
    try {
      held.push_back(submit_input(group, random_half_matrix(32, 4, rng)));
    } catch (const AdmissionError& e) {
      EXPECT_EQ(e.reason(), AdmissionReason::kQueueFull);
      ++shed;
    }
  }
  for (auto& f : held) EXPECT_NO_THROW(f.get());
  // Completions release admission capacity: the group serves again.
  Rng rng(999);
  EXPECT_NO_THROW(submit_input(group, random_half_matrix(32, 4, rng)).get());
  const GroupStats stats = group.stats();
  EXPECT_EQ(stats.admission.rejected_queue, shed);
  EXPECT_EQ(stats.admission.inflight_tokens, 0u);
  EXPECT_EQ(stats.admission.inflight_requests, 0u);
}

TEST(EngineGroup, RateLimitedTenantShedsOthersUnaffected) {
  Options opts;
  opts.replicas = 2;
  opts.admission.tenants["metered"] = {.tokens_per_s = 1.0,
                                       .burst_tokens = 8.0};
  EngineGroup group(tiny_encoder(17), opts);
  Rng rng(500);

  // The metered tenant's burst covers one 8-token request; the second is
  // rejected with the typed reason while the free tenant keeps serving.
  EXPECT_NO_THROW(
      submit_input(group, random_half_matrix(32, 8, rng), "metered").get());
  try {
    submit_input(group, random_half_matrix(32, 8, rng), "metered");
    FAIL() << "over-budget tenant should be rate-limited";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kRateLimited);
  }
  EXPECT_NO_THROW(
      submit_input(group, random_half_matrix(32, 8, rng), "free").get());
  const GroupStats stats = group.stats();
  EXPECT_EQ(stats.admission.rejected_rate, 1u);
  EXPECT_EQ(stats.admission.admitted, 2u);
}

TEST(EngineGroup, ShutdownRefusesNewWorkAndDrains) {
  Options opts;
  opts.replicas = 2;
  EngineGroup group(tiny_encoder(19), opts);
  std::vector<std::future<Response>> futs;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Rng rng(600 + i);
    futs.push_back(submit_input(group, random_half_matrix(32, 4, rng)));
  }
  group.shutdown();
  for (auto& f : futs) EXPECT_NO_THROW(f.get());  // drained, not dropped
  Rng rng(998);
  try {
    submit_input(group, random_half_matrix(32, 4, rng));
    FAIL() << "submit after shutdown should throw";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.reason(), AdmissionReason::kShutdown);
  }
}

TEST(EngineGroup, AdmissionReleasedOnDeadlineShed) {
  // A shed request must release its admission slot exactly like a served
  // one — otherwise sheds leak the global budget until nothing admits.
  Options opts;
  opts.replicas = 1;
  opts.admission.max_queued_tokens = 8;
  EngineGroup group(tiny_encoder(23), opts);
  Rng rng(700);
  Request req;
  req.input = random_half_matrix(32, 8, rng);
  req.deadline = Clock::now() - 1ms;  // lapsed: shed, never executed
  auto fut = group.submit(std::move(req));
  EXPECT_THROW(fut.get(), AdmissionError);
  // The whole budget must be available again.
  Rng rng2(701);
  EXPECT_NO_THROW(
      submit_input(group, random_half_matrix(32, 8, rng2)).get());
  EXPECT_EQ(group.stats().admission.inflight_tokens, 0u);
}

}  // namespace
}  // namespace venom::serving
