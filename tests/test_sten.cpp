// Tests for the STen-style integration layer (Listing 1).
#include "transformer/sten.hpp"

#include <gtest/gtest.h>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"

namespace venom::sten {
namespace {

TEST(SparseTensorWrapper, DenseWrapper) {
  Rng rng(1);
  const HalfMatrix t = random_half_matrix(8, 16, rng);
  const auto w = SparseTensorWrapper::dense(t);
  EXPECT_FALSE(w.is_sparse());
  EXPECT_TRUE(w.dense_tensor() == t);
  EXPECT_THROW(w.wrapped_tensor(), Error);
}

TEST(SparseTensorWrapper, WrappedFromDense) {
  Rng rng(2);
  const HalfMatrix t = random_half_matrix(8, 16, rng);
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(t, {4, 2, 8});
  const auto w = SparseTensorWrapper::wrapped_from_dense(sparse, t);
  EXPECT_TRUE(w.is_sparse());
  EXPECT_TRUE(w.dense_tensor() == t);  // dense origin retained (STen)
  EXPECT_TRUE(w.wrapped_tensor().to_dense() ==
              VnmMatrix::from_dense_magnitude(t, {4, 2, 8}).to_dense());
}

TEST(SparseTensorWrapper, ShapeMismatchThrows) {
  Rng rng(3);
  const HalfMatrix t = random_half_matrix(8, 16, rng);
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(t, {4, 2, 8});
  EXPECT_THROW(
      SparseTensorWrapper::wrapped_from_dense(sparse, HalfMatrix(4, 16)),
      Error);
}

TEST(SparsifierRegistry, DefaultImplementationRegistered) {
  auto& reg = SparsifierRegistry::instance();
  EXPECT_TRUE(reg.contains("vnm_magnitude"));
  const auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "vnm_magnitude"),
            names.end());
}

TEST(SparsifierRegistry, SparsifyThroughRegistry) {
  Rng rng(4);
  const HalfMatrix t = random_half_matrix(16, 16, rng);
  const VnmSparsifier sp{2, 8, 4};
  const auto w = SparsifierRegistry::instance().sparsify("vnm_magnitude", sp,
                                                         t);
  EXPECT_TRUE(w.is_sparse());
  EXPECT_EQ(w.wrapped_tensor().config(), sp.config());
}

TEST(SparsifierRegistry, UnknownNameThrows) {
  EXPECT_THROW(SparsifierRegistry::instance().sparsify(
                   "nonexistent", VnmSparsifier{}, HalfMatrix(8, 8)),
               Error);
}

TEST(SparsifierRegistry, CustomRegistration) {
  auto& reg = SparsifierRegistry::instance();
  // A custom implementation that keeps only the first selected columns
  // (structurally valid but intentionally trivial).
  const bool fresh = reg.register_impl(
      "vnm_test_custom",
      [](const VnmSparsifier& sp, const HalfMatrix& t) {
        return torch_tensor_to_vnm(sp, t);
      });
  EXPECT_TRUE(fresh);
  EXPECT_FALSE(reg.register_impl("vnm_test_custom",
                                 [](const VnmSparsifier& sp,
                                    const HalfMatrix& t) {
                                   return torch_tensor_to_vnm(sp, t);
                                 }));  // duplicate name rejected
  EXPECT_TRUE(reg.contains("vnm_test_custom"));
}

TEST(SpmmModule, ForwardMatchesSpatha) {
  Rng rng(5);
  const HalfMatrix weight = random_half_matrix(16, 32, rng);
  const VnmSparsifier sp{2, 8, 8};
  auto wrapper = torch_tensor_to_vnm(sp, weight);
  const SpmmModule module(wrapper, std::vector<float>(16, 0.0f));

  const HalfMatrix x = random_half_matrix(32, 8, rng);
  const HalfMatrix y = module.forward(x);
  const FloatMatrix ref = spatha::spmm_vnm(wrapper.wrapped_tensor(), x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y.flat()[i].to_float(), ref.flat()[i],
                0.02f + 0.02f * std::abs(ref.flat()[i]));
}

TEST(SpmmModule, DenseFallback) {
  Rng rng(6);
  const HalfMatrix weight = random_half_matrix(8, 16, rng);
  const SpmmModule module(SparseTensorWrapper::dense(weight),
                          std::vector<float>(8, 1.0f));
  const HalfMatrix x = random_half_matrix(16, 4, rng);
  const HalfMatrix y = module.forward(x);
  FloatMatrix ref = gemm_dense(weight, x);
  for (std::size_t o = 0; o < 8; ++o)
    for (std::size_t t = 0; t < 4; ++t)
      EXPECT_NEAR(y(o, t).to_float(), ref(o, t) + 1.0f,
                  0.02f + 0.02f * std::abs(ref(o, t) + 1.0f));
}

TEST(SpmmModule, ExposesCompressedStructures) {
  Rng rng(7);
  const HalfMatrix weight = random_half_matrix(8, 16, rng);
  auto wrapper = torch_tensor_to_vnm(VnmSparsifier{2, 8, 4}, weight);
  const SpmmModule module(wrapper, {});
  EXPECT_EQ(module.values().size(), 8u * 2 * 2);   // rows * groups * n
  EXPECT_EQ(module.metadata().size(), module.values().size());
  EXPECT_EQ(module.columns().size(), 2u * 2 * 4);  // blocks * groups * 4
}

TEST(SpmmModule, BadBiasAndInputShapesThrow) {
  Rng rng(8);
  const HalfMatrix weight = random_half_matrix(8, 16, rng);
  EXPECT_THROW(SpmmModule(SparseTensorWrapper::dense(weight),
                          std::vector<float>(5, 0.0f)),
               Error);
  const SpmmModule module(SparseTensorWrapper::dense(weight), {});
  EXPECT_THROW(module.forward(HalfMatrix(8, 4)), Error);  // 8 != 16 inputs
}

}  // namespace
}  // namespace venom::sten
