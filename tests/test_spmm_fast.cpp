// Parity tests for the high-throughput SpMM pipeline: the packed
// float-panel micro-kernel (spmm_vnm) must be bit-identical to both the
// naive oracle (spmm_vnm_reference) and the seed scalar path
// (spmm_vnm_scalar) — same fp32 accumulation order per output element —
// across ragged shapes and both ColumnLocModes. Also covers the bulk
// fp16 converters and the chunked parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "baselines/spmm_24.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {
namespace {

VnmMatrix random_vnm(std::size_t rows, std::size_t cols, VnmConfig cfg,
                     std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

// Shapes chosen so that B.cols() is not a multiple of block_c (ragged
// width tails shorter than the register strip) and the group count is not
// a multiple of groups_per_panel (ragged K panels).
struct Case {
  VnmConfig fmt;
  std::size_t rows, cols, b_cols;
  std::size_t block_k, block_c;
};

const Case kCases[] = {
    {{4, 2, 8}, 16, 80, 70, 16, 64},   // 10 groups, 2/panel; widths 64+6
    {{8, 2, 10}, 32, 110, 37, 30, 16}, // 11 groups, 3/panel (ragged)
    {{16, 2, 4}, 32, 64, 33, 12, 33},  // width 33 = 2 strips + tail 1
    {{2, 2, 5}, 8, 25, 19, 10, 7},     // M=5, sel=4, everything ragged
    {{4, 1, 2}, 8, 16, 20, 6, 9},      // M<4 degenerate (sel = M = 2)
};

SpmmConfig make_config(const Case& c) {
  SpmmConfig cfg = select_config(c.fmt, c.rows, c.cols, c.b_cols);
  cfg.block_k = c.block_k;
  cfg.block_c = c.block_c;
  return cfg;
}

TEST(SpmmFast, BitIdenticalToReferenceAcrossRaggedShapes) {
  std::uint64_t seed = 100;
  for (const Case& c : kCases) {
    Rng rng(seed + 1);
    const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, seed);
    const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
    const SpmmConfig cfg = make_config(c);

    const FloatMatrix fast = spmm_vnm(a, b, cfg);
    const FloatMatrix ref = spmm_vnm_reference(a, b);
    const FloatMatrix seed_path = spmm_vnm_scalar(a, b, cfg);
    EXPECT_EQ(fast, ref) << "fast != reference for " << cfg.describe();
    EXPECT_EQ(fast, seed_path) << "fast != seed scalar for "
                               << cfg.describe();
    seed += 7;
  }
}

TEST(SpmmFast, FixedColumnLocBitIdenticalToScalar) {
  // ColumnLocMode::kFixed reads selectors 0..sel-1 instead of the
  // column-loc metadata; the fast and seed paths must agree bit-for-bit
  // on the ablation too.
  std::uint64_t seed = 500;
  for (const Case& c : kCases) {
    Rng rng(seed + 1);
    const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, seed);
    const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
    SpmmConfig cfg = make_config(c);
    cfg.column_loc = ColumnLocMode::kFixed;
    EXPECT_EQ(spmm_vnm(a, b, cfg), spmm_vnm_scalar(a, b, cfg));
    seed += 7;
  }
}

TEST(SpmmFast, FixedColumnLocMatchesReferenceOnIdentitySelection) {
  // With the pattern confined to the first 4 columns of every M-group the
  // selection is the identity, so the kFixed ablation must equal the real
  // kernel and the reference exactly.
  Rng rng(13);
  HalfMatrix dense(8, 16);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t g = 0; g < 2; ++g)
      for (std::size_t c = 0; c < 4; ++c)
        dense(r, g * 8 + c) = half_t(rng.normal());
  const VnmConfig fmt{4, 2, 8};
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(dense, fmt);
  const HalfMatrix b = random_half_matrix(16, 21, rng);
  SpmmConfig cfg = select_config(fmt, 8, 16, 21);
  cfg.block_c = 8;  // ragged widths 8, 8, 5
  cfg.column_loc = ColumnLocMode::kFixed;
  EXPECT_EQ(spmm_vnm(a, b, cfg), spmm_vnm_reference(a, b));
}

TEST(SpmmFast, FusedEpilogueMatchesHalfOfUnfused) {
  // With an empty epilogue the fused kernel is to_half(spmm_vnm(..)).
  Rng rng(31);
  const VnmConfig fmt{8, 2, 10};
  const VnmMatrix a = random_vnm(32, 110, fmt, 32);
  const HalfMatrix b = random_half_matrix(110, 37, rng);
  const SpmmConfig cfg = select_config(fmt, 32, 110, 37);
  const HalfMatrix fused = spmm_vnm_fused(a, b, Epilogue{}, cfg);
  const HalfMatrix expect = to_half(spmm_vnm(a, b, cfg));
  ASSERT_EQ(fused.rows(), expect.rows());
  ASSERT_EQ(fused.cols(), expect.cols());
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_EQ(fused.flat()[i].bits(), expect.flat()[i].bits()) << "at " << i;
}

TEST(SpmmNm, BitIdenticalToSpmm24Baseline) {
  // The register-blocked N:M fast path must reproduce the scalar spmm_24
  // bit for bit (same per-element accumulation order) — it replaces it in
  // the dynamic-attention context matmul.
  for (const NmPattern pattern : {NmPattern{2, 4}, NmPattern{1, 2}}) {
    for (const std::size_t width : {8u, 37u, 70u}) {  // ragged strip tails
      Rng rng(17 + pattern.m + width);
      const NmMatrix a = NmMatrix::from_dense_magnitude(
          random_half_matrix(24, 32, rng), pattern);
      const HalfMatrix b = random_half_matrix(32, width, rng);
      const FloatMatrix fast = spmm_nm(a, b);
      const FloatMatrix base = spmm_24(a, b);
      ASSERT_EQ(fast.rows(), base.rows());
      ASSERT_EQ(fast.cols(), base.cols());
      for (std::size_t i = 0; i < fast.size(); ++i)
        ASSERT_EQ(fast.flat()[i], base.flat()[i])
            << pattern.n << ':' << pattern.m << " width " << width
            << " elem " << i;
    }
  }
}

TEST(SpmmNm, HandlesNonHardwarePatterns) {
  // spmm_24 is restricted to the shapes cuSparseLt accepts; the CPU fast
  // path has no such constraint. Check 2:8 against a dense reference.
  Rng rng(29);
  const NmPattern pattern{2, 8};
  const NmMatrix a = NmMatrix::from_dense_magnitude(
      random_half_matrix(8, 32, rng), pattern);
  const HalfMatrix b = random_half_matrix(32, 12, rng);
  const FloatMatrix c = spmm_nm(a, b);
  const HalfMatrix ad = a.to_dense();
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t n = 0; n < 12; ++n) {
      float ref = 0.0f;
      for (std::size_t k = 0; k < 32; ++k)
        ref += ad(r, k).to_float() * b(k, n).to_float();
      EXPECT_NEAR(c(r, n), ref, 1e-3f + 1e-3f * std::fabs(ref));
    }
}

TEST(SpmmNm, ScratchPoolExecutionStaysBitIdentical) {
  // spmm_vnm with a caller-owned scratch pool (the serving plan path)
  // must not perturb results; repeated executions reuse pooled buffers.
  Rng rng(31);
  const VnmMatrix a = random_vnm(32, 80, {8, 2, 8}, 33);
  const HalfMatrix b = random_half_matrix(80, 70, rng);
  const SpmmConfig cfg = select_config({8, 2, 8}, 32, 80, 70);
  const FloatMatrix plain = spmm_vnm(a, b, cfg);
  SpmmScratchPool scratch;
  for (int round = 0; round < 3; ++round) {
    const FloatMatrix pooled = spmm_vnm(a, b, cfg, nullptr, &scratch);
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(pooled.flat()[i], plain.flat()[i]) << round << ' ' << i;
  }
  EXPECT_GE(scratch.created(), 1u);
}

TEST(HalfBulk, HalfToFloatMatchesScalarExhaustively) {
  // Every one of the 65536 bit patterns, including subnormals, infinities
  // and NaNs, must convert exactly as half_t::to_float does.
  std::vector<half_t> src(1 << 16);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = half_t::from_bits(static_cast<std::uint16_t>(i));
  std::vector<float> dst(src.size());
  half_to_float_n(src.data(), dst.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float expect = src[i].to_float();
    EXPECT_EQ(std::bit_cast<std::uint32_t>(dst[i]),
              std::bit_cast<std::uint32_t>(expect))
        << "half bits 0x" << std::hex << i;
  }
  // Repeat in 7-element chunks: below the SIMD width, so every value —
  // including the subnormal range — also exercises the scalar tail loop.
  for (std::size_t base = 0; base < src.size(); base += 7) {
    const std::size_t len = std::min<std::size_t>(7, src.size() - base);
    half_to_float_n(src.data() + base, dst.data() + base, len);
  }
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float expect = src[i].to_float();
    EXPECT_EQ(std::bit_cast<std::uint32_t>(dst[i]),
              std::bit_cast<std::uint32_t>(expect))
        << "scalar tail, half bits 0x" << std::hex << i;
  }
}

TEST(HalfBulk, FloatToHalfMatchesScalarOnFiniteAndInf) {
  std::vector<float> src;
  // Rounding-sensitive corpus: magnitudes across the half range, exact
  // halfway cases, the overflow boundary, subnormal outputs, and zeros.
  Rng rng(7);
  for (int i = 0; i < 4096; ++i)
    src.push_back(rng.normal() * std::pow(2.0f, (i % 40) - 20));
  for (float f : {0.0f, -0.0f, 1.0f, 1.0f + 0x1p-11f, 1.0f + 0x1.8p-11f,
                  65519.0f, 65519.999f, 65520.0f, 70000.0f, 0x1p-24f,
                  0x1.8p-24f, 0x1p-25f, 0x1p-26f, 6.1e-5f, -6.1e-5f})
    for (float s : {1.0f, -1.0f}) src.push_back(f * s);
  src.push_back(std::numeric_limits<float>::infinity());
  src.push_back(-std::numeric_limits<float>::infinity());

  std::vector<half_t> dst(src.size());
  float_to_half_n(src.data(), dst.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_EQ(dst[i].bits(), half_t(src[i]).bits()) << "input " << src[i];
}

TEST(HalfBulk, FloatToHalfNanStaysNan) {
  std::vector<float> src(9, std::numeric_limits<float>::quiet_NaN());
  std::vector<half_t> dst(src.size());
  float_to_half_n(src.data(), dst.data(), src.size());
  for (const half_t h : dst) EXPECT_TRUE(h.is_nan());
}

TEST(ThreadPoolFast, ChunkedCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1037);
  pool.parallel_for_chunks(hits.size(), [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolFast, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(512,
                                 [](std::size_t i) {
                                   if (i == 337)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay serviceable after a failed loop.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace venom::spatha
