// Tests for second-order pruning: saliency/update correctness against the
// quadratic model, selection modes, V:N:M constraints, the structure-decay
// scheduler, and Fisher estimation.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "format/nm.hpp"
#include "format/vnm.hpp"
#include "pruning/finetune.hpp"
#include "pruning/fisher.hpp"
#include "pruning/obs.hpp"
#include "pruning/policies.hpp"
#include "pruning/quadratic.hpp"
#include "pruning/scheduler.hpp"
#include "pruning/smallmat.hpp"

namespace venom::pruning {
namespace {

bool conforms_nm(const FloatMatrix& w, NmPattern p) {
  HalfMatrix h(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i)
    h.flat()[i] = half_t(w.flat()[i]);
  return NmMatrix::conforms(h, p);
}

bool conforms_vnm(const FloatMatrix& w, VnmConfig cfg) {
  HalfMatrix h(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i)
    h.flat()[i] = half_t(w.flat()[i]);
  return VnmMatrix::conforms(h, cfg);
}

TEST(SmallMat, InverseRoundTrip) {
  Rng rng(1);
  const std::size_t n = 6;
  std::vector<double> a(n * n);
  // SPD via Gram + damping.
  std::vector<double> g(n * n);
  for (auto& v : g) v = rng.normal();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = i == j ? 0.5 : 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += g[i * n + k] * g[j * n + k];
      a[i * n + j] = acc;
    }
  const auto inv = inverted(a, n);
  // A * A^-1 == I.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * inv[k * n + j];
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-9);
    }
}

TEST(SmallMat, SingularThrows) {
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};  // rank 1
  EXPECT_THROW(invert_inplace(a, 2), Error);
}

TEST(SmallMat, QuadFormAndSubmatrix) {
  const std::vector<double> a = {2.0, 1.0, 1.0, 3.0};
  const std::vector<double> x = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(quad_form(a, x, 2), 2.0 - 1.0 - 1.0 + 3.0);
  const std::vector<std::size_t> idx = {1};
  const auto sub = submatrix(a, 2, idx);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_DOUBLE_EQ(sub[0], 3.0);
}

/// Key invariant: obs_saliency predicts EXACTLY the quadratic loss
/// increase after pruning Q with the OBS update.
TEST(Obs, SaliencyEqualsActualLossIncrease) {
  Rng rng(2);
  const std::size_t m = 8;
  QuadraticModel model = QuadraticModel::synthesize(2, m, m, rng, 0.7);
  const GroupFisher fisher = model.fisher();
  FloatMatrix w = model.optimum();

  std::vector<double> wg(m);
  for (std::size_t i = 0; i < m; ++i) wg[i] = double(w(0, i));
  const std::vector<std::size_t> q = {1, 4, 6};
  const double predicted = obs_saliency(wg, fisher.inv_block(0, 0), q);

  obs_update(wg, fisher.inv_block(0, 0), q);
  for (std::size_t i = 0; i < m; ++i) w(0, i) = float(wg[i]);
  for (std::size_t i : q) EXPECT_EQ(w(0, i), 0.0f);
  EXPECT_NEAR(model.loss(w), predicted, 1e-4 * std::max(1.0, predicted));
}

TEST(Obs, UpdateIsOptimalRefit) {
  // Any perturbation of the surviving weights must increase the loss.
  Rng rng(3);
  const std::size_t m = 6;
  QuadraticModel model = QuadraticModel::synthesize(1, m, m, rng, 0.8);
  const GroupFisher fisher = model.fisher();
  FloatMatrix w = model.optimum();
  std::vector<double> wg(m);
  for (std::size_t i = 0; i < m; ++i) wg[i] = double(w(0, i));
  const std::vector<std::size_t> q = {0, 3};
  obs_update(wg, fisher.inv_block(0, 0), q);
  FloatMatrix pruned(1, m);
  for (std::size_t i = 0; i < m; ++i) pruned(0, i) = float(wg[i]);
  const double base = model.loss(pruned);
  for (std::size_t i = 0; i < m; ++i) {
    if (std::find(q.begin(), q.end(), i) != q.end()) continue;
    FloatMatrix p2 = pruned;
    p2(0, i) += 0.05f;
    EXPECT_GT(model.loss(p2), base) << i;
    p2(0, i) -= 0.10f;
    EXPECT_GT(model.loss(p2), base) << i;
  }
}

TEST(Obs, EmptyRemovalIsFree) {
  std::vector<double> w = {1.0, 2.0};
  const std::vector<double> finv = {1.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(obs_saliency(w, finv, {}), 0.0);
  obs_update(w, finv, {});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(Obs, CombinatorialFindsOptimum) {
  // With a diagonal Fisher, the optimal 2-of-4 keep is the two largest
  // saliency weights w_i^2 / finv_ii.
  const std::vector<double> w = {3.0, 0.1, -2.0, 0.2};
  std::vector<double> finv(16, 0.0);
  for (int i = 0; i < 4; ++i) finv[i * 4 + i] = 1.0;
  double s = 0.0;
  const auto q = select_removal(w, finv, 2, SelectionMode::kCombinatorial, {},
                                &s);
  EXPECT_EQ(q, (std::vector<std::size_t>{1, 3}));
  EXPECT_NEAR(s, 0.5 * (0.01 + 0.04), 1e-12);
}

TEST(Obs, PairwiseMatchesCombinatorialOnDiagonal) {
  // With no correlations greedy is exact.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 8;
    std::vector<double> w(m), finv(m * m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      w[i] = rng.normal();
      finv[i * m + i] = 0.5 + rng.uniform();
    }
    double sc = 0.0, sp = 0.0;
    const auto qc =
        select_removal(w, finv, 2, SelectionMode::kCombinatorial, {}, &sc);
    const auto qp = select_removal(w, finv, 2, SelectionMode::kPairwise, {},
                                   &sp);
    EXPECT_EQ(qc, qp) << "trial " << trial;
    EXPECT_NEAR(sc, sp, 1e-9);
  }
}

TEST(Obs, CombinatorialNeverWorseThanPairwise) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    QuadraticModel model = QuadraticModel::synthesize(1, 8, 8, rng, 0.9);
    const GroupFisher fisher = model.fisher();
    std::vector<double> w(8);
    for (std::size_t i = 0; i < 8; ++i) w[i] = double(model.optimum()(0, i));
    double sc = 0.0, sp = 0.0;
    select_removal(w, fisher.inv_block(0, 0), 2,
                   SelectionMode::kCombinatorial, {}, &sc);
    select_removal(w, fisher.inv_block(0, 0), 2, SelectionMode::kPairwise, {},
                   &sp);
    EXPECT_LE(sc, sp + 1e-9) << trial;
  }
}

TEST(Obs, AllowedRestrictsSurvivors) {
  const std::vector<double> w = {5.0, 4.0, 3.0, 2.0};
  std::vector<double> finv(16, 0.0);
  for (int i = 0; i < 4; ++i) finv[i * 4 + i] = 1.0;
  const std::vector<std::size_t> allowed = {2, 3};
  for (auto mode : {SelectionMode::kCombinatorial, SelectionMode::kPairwise}) {
    const auto q = select_removal(w, finv, 1, mode, allowed, nullptr);
    // Positions 0 and 1 must be removed despite being largest; survivor is 2.
    EXPECT_EQ(q, (std::vector<std::size_t>{0, 1, 3}));
  }
}

TEST(Obs, PruneNmConformsAndBeatsMagnitudeOnCorrelatedModel) {
  Rng rng(6);
  QuadraticModel model = QuadraticModel::synthesize(16, 32, 8, rng, 0.9);
  const GroupFisher fisher = model.fisher();
  const NmPattern p{2, 8};

  const ObsResult obs = obs_prune_nm(model.optimum(), fisher, p,
                                     SelectionMode::kCombinatorial);
  EXPECT_TRUE(conforms_nm(obs.weights, p));
  EXPECT_NEAR(model.loss(obs.weights), obs.loss_increase,
              1e-3 * std::max(1.0, obs.loss_increase));

  // Magnitude pruning (no update, no curvature) must be no better.
  HalfMatrix hw(16, 32);
  for (std::size_t i = 0; i < hw.size(); ++i)
    hw.flat()[i] = half_t(model.optimum().flat()[i]);
  const HalfMatrix mag = prune_nm(hw, p);
  FloatMatrix magf(16, 32);
  for (std::size_t i = 0; i < magf.size(); ++i)
    magf.flat()[i] = mag.flat()[i].to_float();
  EXPECT_LT(model.loss(obs.weights), model.loss(magf));
}

TEST(Obs, PruneVnmConformsToFormat) {
  Rng rng(7);
  QuadraticModel model = QuadraticModel::synthesize(16, 32, 8, rng, 0.7);
  const GroupFisher fisher = model.fisher();
  const VnmConfig cfg{4, 2, 8};
  const ObsResult r =
      obs_prune_vnm(model.optimum(), fisher, cfg, SelectionMode::kAuto);
  EXPECT_TRUE(conforms_vnm(r.weights, cfg));
  EXPECT_GT(r.loss_increase, 0.0);
}

TEST(Obs, Table2FormatOrdering) {
  // The structural-freedom ordering behind Table 2: looser formats lose
  // less. 1:N:M <= 64-ish:N:M <= wider V.
  Rng rng(8);
  QuadraticModel model = QuadraticModel::synthesize(32, 32, 16, rng, 0.7);
  const GroupFisher fisher = model.fisher();
  const auto loss_for = [&](VnmConfig cfg) {
    return model.loss(
        obs_prune_vnm(model.optimum(), fisher, cfg, SelectionMode::kAuto)
            .weights);
  };
  const double l1 = loss_for({1, 2, 16});
  const double l8 = loss_for({8, 2, 16});
  const double l32 = loss_for({32, 2, 16});
  EXPECT_LE(l1, l8 * 1.001);
  EXPECT_LE(l8, l32 * 1.001);
}

TEST(Obs, VectorWisePrunesWholeVectorsWithUpdate) {
  Rng rng(9);
  QuadraticModel model = QuadraticModel::synthesize(16, 16, 8, rng, 0.6);
  const GroupFisher fisher = model.fisher();
  const ObsResult r =
      obs_prune_vector_wise(model.optimum(), fisher, 8, 0.75);
  // Whole vertical vectors zeroed.
  for (std::size_t vg = 0; vg < 2; ++vg)
    for (std::size_t c = 0; c < 16; ++c) {
      bool any = false, all = true;
      for (std::size_t dr = 0; dr < 8; ++dr) {
        const bool z = r.weights(vg * 8 + dr, c) == 0.0f;
        any = any || !z;
        all = all && !z;
      }
      EXPECT_TRUE(!any || all);
    }
  EXPECT_NEAR(model.loss(r.weights), r.loss_increase,
              1e-3 * std::max(1.0, r.loss_increase));
}

TEST(Scheduler, ScheduleShape) {
  const DecaySchedule s = structure_decay_schedule(8, 2, 4);
  ASSERT_GE(s.n_values.size(), 2u);
  EXPECT_EQ(s.n_values.front(), 8u);
  EXPECT_EQ(s.n_values.back(), 2u);
  for (std::size_t i = 1; i < s.n_values.size(); ++i)
    EXPECT_LT(s.n_values[i], s.n_values[i - 1]);
  // Single step = one-shot.
  const DecaySchedule one = structure_decay_schedule(8, 2, 1);
  EXPECT_EQ(one.n_values, (std::vector<std::size_t>{2}));
  EXPECT_THROW(structure_decay_schedule(1, 2, 2), Error);
}

TEST(Scheduler, GradualNotWorseThanOneShot) {
  Rng rng(10);
  QuadraticModel model = QuadraticModel::synthesize(16, 32, 16, rng, 0.8);
  const GroupFisher fisher = model.fisher();
  const VnmConfig cfg{4, 2, 16};

  const double oneshot = model.loss(
      obs_prune_vnm(model.optimum(), fisher, cfg, SelectionMode::kAuto)
          .weights);
  const DecaySchedule sched = structure_decay_schedule(8, 2, 3);
  const ObsResult grad = obs_prune_vnm_gradual(model.optimum(), fisher, cfg,
                                               sched, SelectionMode::kAuto);
  EXPECT_TRUE(conforms_vnm(grad.weights, cfg));
  // Gradual pruning walks the loss surface gently; on quadratic models it
  // must be at least competitive (allow 5% slack for tie-breaking noise).
  EXPECT_LE(model.loss(grad.weights), oneshot * 1.05);
}

TEST(Fisher, EstimateRecoversExactHessianDirections) {
  // For the quadratic model, gradients at w* + noise are H * noise, so the
  // empirical Fisher converges to H E[noise noise^T] H = sigma^2 H^2. The
  // *selection* it induces matches the exact one on strongly diagonal
  // models; here we check the estimator is SPD and usable end to end.
  Rng rng(11);
  QuadraticModel model = QuadraticModel::synthesize(4, 8, 8, rng, 0.5);
  std::vector<FloatMatrix> grads;
  for (int s = 0; s < 64; ++s) {
    FloatMatrix w = model.optimum();
    for (auto& v : w.flat()) v += 0.1f * rng.normal();
    grads.push_back(model.gradient(w));
  }
  const GroupFisher est = GroupFisher::estimate(grads, 8, 1e-3);
  EXPECT_EQ(est.m(), 8u);
  const ObsResult r = obs_prune_nm(model.optimum(), est, {2, 8},
                                   SelectionMode::kAuto);
  EXPECT_TRUE(conforms_nm(r.weights, {2, 8}));
  EXPECT_LT(model.loss(r.weights), model.normalizer());
}

TEST(Fisher, ActivationCovarianceBlocksAreSharedAcrossRows) {
  Rng rng(25);
  const HalfMatrix x = random_half_matrix(16, 64, rng);  // 16 feats, 64 samples
  const GroupFisher f = GroupFisher::from_activation_covariance(x, 4, 8);
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_EQ(f.groups(), 2u);
  // Every weight row shares the same activation statistics.
  for (std::size_t g = 0; g < 2; ++g) {
    const auto b0 = f.inv_block(0, g);
    for (std::size_t r = 1; r < 4; ++r) {
      const auto br = f.inv_block(r, g);
      for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(b0[i], br[i]);
    }
  }
}

TEST(Fisher, ActivationCovarianceMatchesDirectComputation) {
  // 1 feature group of 2, deterministic samples: H = X X^T / S + damp.
  HalfMatrix x(2, 2);
  x(0, 0) = half_t(1.0f);
  x(1, 0) = half_t(0.0f);
  x(0, 1) = half_t(1.0f);
  x(1, 1) = half_t(2.0f);
  // H = [[1, 1], [1, 2]] + damp I; inverse of [[1.01,1],[1,2.01]].
  const GroupFisher f =
      GroupFisher::from_activation_covariance(x, 1, 2, 0.01);
  const auto inv = f.inv_block(0, 0);
  const double det = 1.01 * 2.01 - 1.0;
  EXPECT_NEAR(inv[0], 2.01 / det, 1e-9);
  EXPECT_NEAR(inv[1], -1.0 / det, 1e-9);
  EXPECT_NEAR(inv[3], 1.01 / det, 1e-9);
}

TEST(Fisher, ActivationCovarianceDrivesLayerPruning) {
  // End-to-end OBC-style: prune a real layer's weights using calibration
  // activations; the second-order choice must beat plain magnitude in
  // *output* reconstruction error E||W x - W_pruned x||^2 when the
  // activation covariance is anisotropic.
  Rng rng(26);
  const std::size_t out = 16, in = 16, samples = 128;
  // Anisotropic activations: feature i has scale (1 + i).
  HalfMatrix x(in, samples);
  for (std::size_t i = 0; i < in; ++i)
    for (std::size_t s = 0; s < samples; ++s)
      x(i, s) = half_t(0.2f * float(1 + i) * rng.normal());
  const FloatMatrix w = random_float_matrix(out, in, rng);

  const GroupFisher fisher =
      GroupFisher::from_activation_covariance(x, out, 8, 1e-3);
  const ObsResult obs =
      obs_prune_nm(w, fisher, {2, 8}, SelectionMode::kCombinatorial);

  HalfMatrix w_half(out, in);
  for (std::size_t i = 0; i < w.size(); ++i)
    w_half.flat()[i] = half_t(w.flat()[i]);
  const HalfMatrix mag = prune_nm(w_half, {2, 8});

  const auto recon_err = [&](const auto& wp) {
    double err = 0.0;
    for (std::size_t o = 0; o < out; ++o)
      for (std::size_t s = 0; s < samples; ++s) {
        double d = 0.0;
        for (std::size_t i = 0; i < in; ++i) {
          const double orig = double(w(o, i));
          double pruned;
          if constexpr (std::is_same_v<std::decay_t<decltype(wp)>,
                                       FloatMatrix>) {
            pruned = double(wp(o, i));
          } else {
            pruned = double(wp(o, i).to_float());
          }
          d += (orig - pruned) * double(x(i, s).to_float());
        }
        err += d * d;
      }
    return err;
  };
  EXPECT_LT(recon_err(obs.weights), recon_err(mag));
}

TEST(Fisher, DiagonalBuilder) {
  FloatMatrix gsq(2, 8, 4.0f);
  const GroupFisher f = GroupFisher::diagonal(gsq, 4, 0.0);
  // inverse of diag(4) = diag(0.25)
  const auto blk = f.inv_block(0, 0);
  EXPECT_NEAR(blk[0], 0.25, 1e-12);
  EXPECT_NEAR(blk[5], 0.25, 1e-12);
  EXPECT_NEAR(blk[1], 0.0, 1e-12);
}

TEST(Fisher, EstimateRejectsEmpty) {
  EXPECT_THROW(GroupFisher::estimate({}, 4), Error);
}

TEST(Quadratic, LossZeroAtOptimumAndPositiveElsewhere) {
  Rng rng(12);
  QuadraticModel model = QuadraticModel::synthesize(4, 16, 8, rng, 0.5);
  EXPECT_NEAR(model.loss(model.optimum()), 0.0, 1e-9);
  FloatMatrix w = model.optimum();
  w(0, 0) += 1.0f;
  EXPECT_GT(model.loss(w), 0.0);
  EXPECT_GT(model.normalizer(), 0.0);
}

TEST(Quadratic, GradientZeroAtOptimum) {
  Rng rng(13);
  QuadraticModel model = QuadraticModel::synthesize(2, 8, 8, rng, 0.5);
  const FloatMatrix g = model.gradient(model.optimum());
  for (float v : g.flat()) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

TEST(Quadratic, OutlierColumnsScaleOptimum) {
  Rng a(15), b(15);
  QuadraticModel plain = QuadraticModel::synthesize(16, 16, 8, a, 0.5, 0.0);
  QuadraticModel outl = QuadraticModel::synthesize(16, 16, 8, b, 0.5, 0.5);
  double e_plain = 0.0, e_outl = 0.0;
  for (float v : plain.optimum().flat()) e_plain += std::fabs(v);
  for (float v : outl.optimum().flat()) e_outl += std::fabs(v);
  EXPECT_GT(e_outl, e_plain);  // outlier columns carry extra magnitude
}

TEST(NonQuadratic, ReducesToQuadraticAtKappaZero) {
  Rng rng(16);
  QuadraticModel base = QuadraticModel::synthesize(4, 8, 8, rng, 0.5);
  NonQuadraticModel model(base, 0.0);
  FloatMatrix w = base.optimum();
  w(0, 0) += 2.0f;
  EXPECT_NEAR(model.loss(w), base.loss(w), 1e-9);
}

TEST(NonQuadratic, SteeperThanQuadraticAwayFromOptimum) {
  Rng rng(17);
  QuadraticModel base = QuadraticModel::synthesize(4, 8, 8, rng, 0.5);
  NonQuadraticModel model(base, 2.0);
  FloatMatrix w = base.optimum();
  EXPECT_NEAR(model.loss(w), 0.0, 1e-9);
  w(0, 0) += 3.0f;
  EXPECT_GT(model.loss(w), base.loss(w));
}

TEST(NonQuadratic, GradientMatchesFiniteDifference) {
  Rng rng(18);
  NonQuadraticModel model(QuadraticModel::synthesize(2, 8, 4, rng, 0.7), 1.5);
  FloatMatrix w = model.optimum();
  for (auto& v : w.flat()) v += 0.3f * rng.normal();
  const FloatMatrix g = model.gradient(w);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < 4; ++i) {
    FloatMatrix wp = w, wm = w;
    wp.flat()[i] += float(eps);
    wm.flat()[i] -= float(eps);
    const double fd = (model.loss(wp) - model.loss(wm)) / (2 * eps);
    EXPECT_NEAR(g.flat()[i], fd, 1e-2 * std::max(1.0, std::abs(fd)));
  }
}

TEST(FineTune, ReducesLossAndPreservesMask) {
  Rng rng(19);
  NonQuadraticModel model(QuadraticModel::synthesize(8, 16, 8, rng, 0.7), 1.0);
  FloatMatrix w = model.optimum();
  // Prune a third of the weights (zero = pruned).
  for (std::size_t i = 0; i < w.size(); i += 3) w.flat()[i] = 0.0f;
  // Perturb the survivors so there is something to recover.
  for (std::size_t i = 0; i < w.size(); ++i)
    if (w.flat()[i] != 0.0f) w.flat()[i] += 0.5f * rng.normal();

  const double before = model.loss(w);
  const double after = fine_tune(model, w, 100);
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, model.loss(w), 1e-9);  // returns the final loss
  for (std::size_t i = 0; i < w.size(); i += 3)
    EXPECT_EQ(w.flat()[i], 0.0f);  // pruned entries stay zero
}

TEST(FineTune, ConvergesToConstrainedOptimumOnQuadratic) {
  // For a quadratic loss, masked fine-tuning must approach the OBS
  // update's constrained optimum from any survivor perturbation.
  Rng rng(20);
  QuadraticModel model = QuadraticModel::synthesize(2, 8, 8, rng, 0.7);
  const GroupFisher fisher = model.fisher();
  const auto obs = obs_prune_nm(model.optimum(), fisher, {2, 8},
                                SelectionMode::kCombinatorial);
  FloatMatrix w = obs.weights;
  for (auto& v : w.flat())
    if (v != 0.0f) v += 0.3f * rng.normal();
  const double after = fine_tune(model, w, 500, 0.1);
  EXPECT_NEAR(after, model.loss(obs.weights),
              1e-3 * std::max(1.0, model.loss(obs.weights)));
}

TEST(Quadratic, GradientMatchesFiniteDifference) {
  Rng rng(14);
  QuadraticModel model = QuadraticModel::synthesize(2, 8, 4, rng, 0.8);
  FloatMatrix w = model.optimum();
  for (auto& v : w.flat()) v += 0.3f * rng.normal();
  const FloatMatrix g = model.gradient(w);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < 4; ++i) {
    FloatMatrix wp = w, wm = w;
    wp.flat()[i] += float(eps);
    wm.flat()[i] -= float(eps);
    const double fd = (model.loss(wp) - model.loss(wm)) / (2 * eps);
    EXPECT_NEAR(g.flat()[i], fd, 1e-2 * std::max(1.0, std::abs(fd)));
  }
}

}  // namespace
}  // namespace venom::pruning
