// Dispatcher parity and selection tests for the venom::ops layer.
//
// Every registered backend is exercised against the kernel oracles on
// ragged shapes (and both ColumnLocModes for the V:N:M family); backend
// selection is pinned to the pre-ops hand-picked kernels; and the
// VENOM_BACKEND / force_backend overrides are shown to apply when valid
// and to fall back to normal selection when the forced backend is
// unknown or rejects the problem.
#include <gtest/gtest.h>

#include <cstdlib>

#include "baselines/gemm.hpp"
#include "baselines/spmm_24.hpp"
#include "baselines/spmm_csr.hpp"
#include "baselines/spmm_cvse.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "io/serialize.hpp"
#include "ops/ops.hpp"
#include "pruning/policies.hpp"
#include "spatha/spmm.hpp"

namespace venom::ops {
namespace {

VnmMatrix random_vnm(std::size_t rows, std::size_t cols, VnmConfig cfg,
                     std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

// Ragged problem set: widths that are not multiples of the register
// strips, group counts that are not multiples of groups-per-panel, and
// an M<4 degenerate format (same family as the spmm_fast parity suite).
struct VnmCase {
  VnmConfig fmt;
  std::size_t rows, cols, b_cols;
};

const VnmCase kVnmCases[] = {
    {{4, 2, 8}, 16, 80, 70},
    {{8, 2, 10}, 32, 110, 37},
    {{16, 2, 4}, 32, 64, 33},
    {{2, 2, 5}, 8, 25, 19},
    {{4, 1, 2}, 8, 16, 20},
};

MatmulDesc vnm_desc(const VnmCase& c) {
  MatmulDesc d;
  d.rows = c.rows;
  d.cols = c.cols;
  d.b_cols = c.b_cols;
  d.format = OperandFormat::kVnm;
  d.vnm = c.fmt;
  return d;
}

TEST(OpsRegistry, BuiltinFamiliesAreRegistered) {
  auto& registry = BackendRegistry::instance();
  for (const char* name : {"vnm-fast", "vnm-scalar", "vnm-mma", "nm",
                           "spmm-24", "cvse", "csr", "dense-gemm"}) {
    const Matmul* backend = registry.find(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    EXPECT_FALSE(backend->describe().empty());
  }
  EXPECT_EQ(registry.find("no-such-backend"), nullptr);
}

TEST(OpsRegistry, RejectsDuplicateNames) {
  // The builtins are already registered, so re-registering any of their
  // names must throw (registering a live second "csr" would make
  // dispatch ambiguous).
  class FakeCsr final : public Matmul {
   public:
    std::string_view name() const override { return "csr"; }
    std::string describe() const override { return "dup"; }
    int priority() const override { return 1; }
    bool supports(const MatmulDesc&, const std::string&) const override {
      return false;
    }
    FloatMatrix run(const MatmulArgs&, ExecContext&) const override {
      return {};
    }
  };
  EXPECT_THROW(BackendRegistry::instance().add(std::make_unique<FakeCsr>()),
               Error);
}

TEST(OpsDispatch, SelectionMatchesPreOpsKernelChoice) {
  // Format alone routes to the production kernel family each call site
  // hand-picked before the ops layer existed.
  auto& registry = BackendRegistry::instance();
  MatmulDesc vnm = vnm_desc(kVnmCases[0]);
  EXPECT_EQ(registry.select(vnm).name(), "vnm-fast");

  MatmulDesc nm;
  nm.format = OperandFormat::kNm;
  nm.rows = 16;
  nm.cols = 32;
  nm.b_cols = 8;
  nm.nm = {2, 4};
  EXPECT_EQ(registry.select(nm).name(), "nm");
  nm.nm = {2, 8};  // non-hardware pattern: spmm-24 must not be eligible
  EXPECT_EQ(registry.select(nm).name(), "nm");

  MatmulDesc dense;
  dense.format = OperandFormat::kDense;
  dense.rows = dense.cols = dense.b_cols = 8;
  EXPECT_EQ(registry.select(dense).name(), "dense-gemm");

  MatmulDesc csr = dense;
  csr.format = OperandFormat::kCsr;
  EXPECT_EQ(registry.select(csr).name(), "csr");

  MatmulDesc cvse = dense;
  cvse.format = OperandFormat::kCvse;
  EXPECT_EQ(registry.select(cvse).name(), "cvse");
}

TEST(OpsDispatch, VnmBackendsMatchReferenceAcrossRaggedShapes) {
  ExecContext ctx;
  std::uint64_t seed = 900;
  for (const VnmCase& c : kVnmCases) {
    Rng rng(seed + 1);
    const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, seed);
    const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
    const FloatMatrix ref = spatha::spmm_vnm_reference(a, b);
    const MatmulArgs args = MatmulArgs::make(a, b);
    const MatmulDesc desc = args.desc();

    for (const Matmul* backend : BackendRegistry::instance().backends()) {
      if (!backend->supports(desc, cpu_feature_string())) continue;
      const FloatMatrix got = backend->run(args, ctx);
      const std::string name(backend->name());
      if (name == "vnm-mma") {
        // The mma.sp fidelity path accumulates in tile order, so it is
        // numerically (not bit-) identical.
        EXPECT_LT(rel_fro_error(got, ref), 1e-5f) << name;
      } else if (name.rfind("vnm-int8", 0) == 0) {
        // Quantized backends accept fp16 descs (on-the-fly quantization)
        // and are approximate by design; their exactness contract is
        // fast-vs-scalar bit identity, covered in test_quant.
        EXPECT_LT(rel_fro_error(got, ref), 0.05f) << name;
      } else if (name.rfind("vnm-fp8", 0) == 0) {
        EXPECT_LT(rel_fro_error(got, ref), 0.1f) << name;
      } else {
        EXPECT_EQ(got, ref) << name;
      }
    }
    seed += 7;
  }
}

TEST(OpsDispatch, VnmBackendsAgreeOnBothColumnLocModes) {
  // The kFixed ablation selects different B rows than the real
  // column-loc gather, so it cannot be compared to the reference —
  // but every V:N:M backend taking a config must agree with the scalar
  // oracle bit-for-bit under both modes.
  ExecContext ctx;
  std::uint64_t seed = 1300;
  for (const VnmCase& c : kVnmCases) {
    Rng rng(seed + 1);
    const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, seed);
    const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
    for (const spatha::ColumnLocMode mode :
         {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
      spatha::SpmmConfig cfg =
          spatha::select_config(c.fmt, c.rows, c.cols, c.b_cols);
      cfg.column_loc = mode;
      MatmulArgs args = MatmulArgs::make(a, b);
      args.config = &cfg;
      const FloatMatrix fast =
          BackendRegistry::instance().find("vnm-fast")->run(args, ctx);
      const FloatMatrix scalar =
          BackendRegistry::instance().find("vnm-scalar")->run(args, ctx);
      EXPECT_EQ(fast, scalar)
          << "mode " << (mode == spatha::ColumnLocMode::kFixed ? "fixed"
                                                               : "enabled");
    }
    seed += 7;
  }
}

TEST(OpsDispatch, NmBackendsBitIdenticalOnHardwarePatterns) {
  Rng rng(41);
  ExecContext ctx;
  const HalfMatrix dense = random_half_matrix(24, 48, rng);
  const HalfMatrix b = random_half_matrix(48, 19, rng);
  for (const NmPattern pattern : {NmPattern{2, 4}, NmPattern{1, 2}}) {
    const NmMatrix a = NmMatrix::from_dense_magnitude(dense, pattern);
    const MatmulArgs args = MatmulArgs::make(a, b);
    // Default dispatch (nm fast path) vs the pinned 2:4 baseline.
    const FloatMatrix fast = matmul(args, ctx);
    const ScopedBackend forced("spmm-24");
    EXPECT_EQ(matmul(args, ctx), fast);
  }
}

TEST(OpsDispatch, DenseCvseCsrMatchTheirKernels) {
  Rng rng(43);
  ExecContext ctx;
  const HalfMatrix dense = random_half_matrix(32, 40, rng);
  const HalfMatrix b = random_half_matrix(40, 11, rng);
  EXPECT_EQ(matmul(MatmulArgs::make(dense, b), ctx), gemm_dense(dense, b));

  const CsrMatrix csr =
      CsrMatrix::from_dense(pruning::prune_unstructured(dense, 0.7));
  EXPECT_EQ(matmul(MatmulArgs::make(csr, b), ctx), spmm_csr(csr, b));

  const CvseMatrix cvse = CvseMatrix::from_dense_magnitude(dense, 8, 0.3);
  EXPECT_EQ(matmul(MatmulArgs::make(cvse, b), ctx), spmm_cvse(cvse, b));
}

TEST(OpsDispatch, FusedEpilogueBitIdenticalAcrossBackends) {
  // The generic post-hoc fused path (used by vnm-scalar) and the Spatha
  // fused stage 3 (vnm-fast override) must produce identical fp16 bits.
  Rng rng(47);
  ExecContext ctx;
  const VnmCase& c = kVnmCases[1];
  const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, 77);
  const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
  std::vector<float> bias(c.rows);
  for (auto& v : bias) v = rng.normal();
  for (const spatha::Activation act :
       {spatha::Activation::kNone, spatha::Activation::kRelu,
        spatha::Activation::kGelu}) {
    spatha::Epilogue epilogue;
    epilogue.bias = bias;
    epilogue.activation = act;
    const MatmulArgs args = MatmulArgs::make(a, b);
    const HalfMatrix fused = BackendRegistry::instance()
                                 .find("vnm-fast")
                                 ->run_fused(args, epilogue, ctx);
    const HalfMatrix generic = BackendRegistry::instance()
                                   .find("vnm-scalar")
                                   ->run_fused(args, epilogue, ctx);
    ASSERT_EQ(fused.rows(), generic.rows());
    ASSERT_EQ(fused.cols(), generic.cols());
    for (std::size_t i = 0; i < fused.size(); ++i)
      ASSERT_EQ(fused.flat()[i].bits(), generic.flat()[i].bits());
  }
}

TEST(OpsOverride, ForceBackendAppliesAndRestores) {
  const MatmulDesc desc = vnm_desc(kVnmCases[0]);
  auto& registry = BackendRegistry::instance();
  EXPECT_EQ(registry.select(desc).name(), "vnm-fast");
  {
    const ScopedBackend forced("vnm-scalar");
    EXPECT_EQ(registry.select(desc).name(), "vnm-scalar");
  }
  EXPECT_EQ(registry.select(desc).name(), "vnm-fast");
}

TEST(OpsOverride, EnvVarSelectsBackend) {
  const MatmulDesc desc = vnm_desc(kVnmCases[0]);
  ASSERT_EQ(setenv("VENOM_BACKEND", "vnm-scalar", 1), 0);
  EXPECT_EQ(BackendRegistry::instance().select(desc).name(), "vnm-scalar");
  // Programmatic force outranks the environment.
  {
    const ScopedBackend forced("vnm-fast");
    EXPECT_EQ(BackendRegistry::instance().select(desc).name(), "vnm-fast");
  }
  ASSERT_EQ(unsetenv("VENOM_BACKEND"), 0);
  EXPECT_EQ(BackendRegistry::instance().select(desc).name(), "vnm-fast");
}

TEST(OpsOverride, UnsupportedOrUnknownForceFallsBack) {
  // Forcing a backend that rejects the problem (csr cannot run a V:N:M
  // operand) or does not exist must fall back to normal selection — an
  // override can never turn a valid product into an error.
  const MatmulDesc desc = vnm_desc(kVnmCases[3]);  // M=5: vnm-mma rejects
  auto& registry = BackendRegistry::instance();
  for (const char* forced : {"csr", "vnm-mma", "definitely-not-a-backend"}) {
    const ScopedBackend scope(forced);
    const auto sel = registry.select_explained(desc);
    EXPECT_EQ(sel.backend->name(), "vnm-fast") << forced;
    EXPECT_EQ(sel.forced_ignored, forced);
  }
  ASSERT_EQ(setenv("VENOM_BACKEND", "definitely-not-a-backend", 1), 0);
  EXPECT_EQ(registry.select(desc).name(), "vnm-fast");
  ASSERT_EQ(unsetenv("VENOM_BACKEND"), 0);
}

TEST(OpsOverride, MmaForceOnNonHardwareFormatFallsBackInsteadOfThrowing) {
  // 16:1:2 satisfies the mma divisibility checks (16 | V, gathered K
  // multiple of 32, 8 | C) but not the 2:4 mapping spmm_vnm_mma
  // requires; supports() must reject it so the forced override falls
  // back to vnm-fast instead of letting the kernel throw.
  Rng rng(71);
  const VnmConfig fmt{16, 1, 2};
  const VnmMatrix a = random_vnm(32, 64, fmt, 23);
  const HalfMatrix b = random_half_matrix(64, 8, rng);
  const MatmulDesc desc = MatmulArgs::make(a, b).desc();
  const ScopedBackend forced("vnm-mma");
  const auto sel = BackendRegistry::instance().select_explained(desc);
  EXPECT_EQ(sel.backend->name(), "vnm-fast");
  EXPECT_EQ(sel.forced_ignored, "vnm-mma");
  EXPECT_EQ(matmul(MatmulArgs::make(a, b)),
            spatha::spmm_vnm_reference(a, b));
}

TEST(OpsOverride, ForcedRunsAreBitIdentical) {
  // End to end through matmul(): a forced oracle backend must reproduce
  // the default backend's bits (the dispatch layer adds no arithmetic).
  const VnmCase& c = kVnmCases[2];
  Rng rng(61);
  const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, 21);
  const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
  const FloatMatrix fast = matmul(MatmulArgs::make(a, b));
  const ScopedBackend forced("vnm-scalar");
  EXPECT_EQ(matmul(MatmulArgs::make(a, b)), fast);
}

TEST(ExecContext, OwnsIsolatedPlanCache) {
  ExecContext a;
  ExecContext b;
  EXPECT_EQ(a.plan_cache().size(), 0u);
  const VnmCase& c = kVnmCases[0];
  const auto vnm = std::make_shared<const VnmMatrix>(
      random_vnm(c.rows, c.cols, c.fmt, 5));
  Rng rng(6);
  const HalfMatrix x = random_half_matrix(c.cols, c.b_cols, rng);
  const MatmulArgs args =
      MatmulArgs::make(vnm, spatha::weight_fingerprint(*vnm), x);
  (void)matmul(args, a);
  (void)matmul(args, a);
  EXPECT_EQ(a.plan_cache().misses(), 1u);
  EXPECT_EQ(a.plan_cache().hits(), 1u);
  EXPECT_EQ(b.plan_cache().size(), 0u);  // contexts do not share caches
}

TEST(ExecContext, PrivatePoolRunsKernels) {
  ExecContextOptions opts;
  opts.threads = 2;
  ExecContext ctx(opts);
  EXPECT_EQ(ctx.pool().size(), 2u);
  const VnmCase& c = kVnmCases[0];
  Rng rng(8);
  const VnmMatrix a = random_vnm(c.rows, c.cols, c.fmt, 7);
  const HalfMatrix b = random_half_matrix(c.cols, c.b_cols, rng);
  EXPECT_EQ(matmul(MatmulArgs::make(a, b), ctx),
            spatha::spmm_vnm_reference(a, b));
}

TEST(ExecContext, PrivateTuningCacheReachesThePlanTier) {
  // A context constructed with tuning_cache_path must apply its private
  // tuned configs on BOTH dispatch tiers — the direct one and the
  // plan-cache one (the serving hot path), where the config is baked
  // into the cached plan at build time.
  const VnmCase& c = kVnmCases[0];
  spatha::TuningCache cache;
  spatha::TuningEntry entry;
  entry.config = spatha::select_config_heuristic(c.fmt, c.rows, c.cols,
                                                 c.b_cols);
  entry.config.chunk_grain = 3;  // distinctive, results-neutral marker
  cache.put(spatha::make_tuning_key(c.fmt, c.rows, c.cols, c.b_cols),
            entry);
  const std::string path = ::testing::TempDir() + "ops_private_tune.json";
  io::save_tuning_cache(cache, path);

  ExecContextOptions opts;
  opts.tuning_cache_path = path;
  ExecContext ctx(opts);
  EXPECT_EQ(ctx.select_config(c.fmt, c.rows, c.cols, c.b_cols).chunk_grain,
            3u);

  const auto vnm = std::make_shared<const VnmMatrix>(
      random_vnm(c.rows, c.cols, c.fmt, 11));
  Rng rng(12);
  const HalfMatrix x = random_half_matrix(c.cols, c.b_cols, rng);
  const std::uint64_t fp = spatha::weight_fingerprint(*vnm);
  EXPECT_EQ(matmul(MatmulArgs::make(vnm, fp, x), ctx),
            spatha::spmm_vnm_reference(*vnm, x));
  // Re-fetch the plan dispatch just built and cached: it must carry the
  // private tuned config, not the process-global selection.
  const spatha::SpmmProblem problem{.rows = c.rows, .cols = c.cols,
                                    .b_cols = c.b_cols, .format = c.fmt};
  const auto plan = ctx.plan_cache().get_or_build(problem, vnm, fp);
  EXPECT_EQ(plan->config().chunk_grain, 3u);
  EXPECT_EQ(ctx.plan_cache().hits(), 1u);
}

TEST(ExecContext, SelectConfigMatchesSpathaSelection) {
  // With default options the context's config choice is exactly
  // spatha::select_config — the bit-identical-dispatch guarantee.
  ExecContext ctx;
  const VnmConfig fmt{64, 2, 8};
  EXPECT_EQ(ctx.select_config(fmt, 256, 512, 128),
            spatha::select_config(fmt, 256, 512, 128));
}

}  // namespace
}  // namespace venom::ops
