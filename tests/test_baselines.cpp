// Tests for the baseline kernels: dense GEMM, 2:4 SpMM, CSR SpMM, CVSE
// SpMM. Every sparse kernel is validated against the dense GEMM of its
// decompressed operand.
#include <gtest/gtest.h>

#include "baselines/gemm.hpp"
#include "baselines/spmm_24.hpp"
#include "baselines/spmm_csr.hpp"
#include "baselines/spmm_cvse.hpp"
#include "common/rng.hpp"
#include "pruning/policies.hpp"

namespace venom {
namespace {

constexpr float kTol = 2e-2f;  // fp16 inputs, fp32 accumulation

TEST(DenseGemm, MatchesReference) {
  Rng rng(1);
  const HalfMatrix a = random_half_matrix(33, 47, rng);
  const HalfMatrix b = random_half_matrix(47, 29, rng);
  const FloatMatrix c = gemm_dense(a, b);
  const FloatMatrix ref = gemm_reference(a, b);
  EXPECT_LT(rel_fro_error(c, ref), 1e-5f);
}

TEST(DenseGemm, IdentityPreserves) {
  Rng rng(2);
  const HalfMatrix b = random_half_matrix(8, 5, rng);
  HalfMatrix eye(8, 8);
  for (std::size_t i = 0; i < 8; ++i) eye(i, i) = half_t(1.0f);
  const FloatMatrix c = gemm_dense(eye, b);
  EXPECT_LT(max_abs_diff(c, to_float(b)), 1e-6f);
}

TEST(DenseGemm, ShapeMismatchThrows) {
  EXPECT_THROW(gemm_dense(HalfMatrix(4, 5), HalfMatrix(6, 3)), Error);
}

TEST(DenseGemm, LargeBlockedPathCrossesPanels) {
  // Exercise K > panel size (256) and rows > block size (32).
  Rng rng(3);
  const HalfMatrix a = random_half_matrix(70, 600, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(600, 16, rng, 0.1f);
  EXPECT_LT(rel_fro_error(gemm_dense(a, b), gemm_reference(a, b)), 1e-5f);
}

TEST(DenseGemm, FlopsHelper) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

TEST(Spmm24, MatchesDenseGemmOfDecompressed) {
  Rng rng(4);
  const HalfMatrix dense = random_half_matrix(32, 64, rng);
  const NmMatrix a = NmMatrix::from_dense_magnitude(dense, {2, 4});
  const HalfMatrix b = random_half_matrix(64, 24, rng);
  const FloatMatrix c = spmm_24(a, b);
  const FloatMatrix ref = gemm_dense(a.to_dense(), b);
  EXPECT_LT(rel_fro_error(c, ref), 1e-5f);
}

TEST(Spmm24, Supports12Pattern) {
  Rng rng(5);
  const HalfMatrix dense = random_half_matrix(16, 32, rng);
  const NmMatrix a = NmMatrix::from_dense_magnitude(dense, {1, 2});
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  EXPECT_LT(rel_fro_error(spmm_24(a, b), gemm_dense(a.to_dense(), b)), 1e-5f);
}

TEST(Spmm24, RejectsArbitraryPatterns) {
  Rng rng(6);
  const NmMatrix a =
      NmMatrix::from_dense_magnitude(random_half_matrix(8, 16, rng), {2, 8});
  EXPECT_THROW(spmm_24(a, HalfMatrix(16, 4)), Error);
}

TEST(Spmm24, MmaPathMatchesDirectPath) {
  // The tile path through the mma.sp simulator must agree bit-for-bit in
  // structure (fp32 sums in a different order -> tiny tolerance).
  Rng rng(7);
  const HalfMatrix dense = random_half_matrix(32, 64, rng);
  const NmMatrix a = NmMatrix::from_dense_magnitude(dense, {2, 4});
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  EXPECT_LT(rel_fro_error(spmm_24_mma(a, b), spmm_24(a, b)), kTol);
}

TEST(Spmm24, MmaPathRejectsUntiledShapes) {
  Rng rng(8);
  const NmMatrix a =
      NmMatrix::from_dense_magnitude(random_half_matrix(8, 32, rng), {2, 4});
  EXPECT_THROW(spmm_24_mma(a, HalfMatrix(32, 8)), Error);  // rows % 16
}

TEST(SpmmCsr, MatchesDense) {
  Rng rng(9);
  const HalfMatrix dense =
      pruning::prune_unstructured(random_half_matrix(24, 40, rng), 0.8);
  const CsrMatrix a = CsrMatrix::from_dense(dense);
  const HalfMatrix b = random_half_matrix(40, 12, rng);
  EXPECT_LT(rel_fro_error(spmm_csr(a, b), gemm_dense(dense, b)), 1e-5f);
}

TEST(SpmmCsr, EmptyRowsProduceZeros) {
  HalfMatrix dense(4, 8);
  dense(1, 3) = half_t(2.0f);
  Rng rng(10);
  const HalfMatrix b = random_half_matrix(8, 4, rng);
  const FloatMatrix c = spmm_csr(CsrMatrix::from_dense(dense), b);
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_FLOAT_EQ(c(0, n), 0.0f);
    EXPECT_NEAR(c(1, n), 2.0f * b(3, n).to_float(), 1e-3f);
  }
}

TEST(SpmmCvse, MatchesDense) {
  Rng rng(11);
  const HalfMatrix dense =
      pruning::prune_vector_wise(random_half_matrix(32, 40, rng), 8, 0.75);
  const CvseMatrix a = CvseMatrix::from_dense(dense, 8);
  const HalfMatrix b = random_half_matrix(40, 12, rng);
  EXPECT_LT(rel_fro_error(spmm_cvse(a, b), gemm_dense(dense, b)), 1e-5f);
}

TEST(SpmmCvse, VectorLengthsSweep) {
  Rng rng(12);
  for (std::size_t l : {2u, 4u, 8u}) {
    const HalfMatrix dense =
        pruning::prune_vector_wise(random_half_matrix(16, 24, rng), l, 0.5);
    const CvseMatrix a = CvseMatrix::from_dense(dense, l);
    const HalfMatrix b = random_half_matrix(24, 8, rng);
    EXPECT_LT(rel_fro_error(spmm_cvse(a, b), gemm_dense(dense, b)), 1e-5f)
        << "l=" << l;
  }
}

TEST(AllSpmm, AgreeOnSharedPattern) {
  // A 2:4 matrix is valid input to every kernel; all must agree.
  Rng rng(13);
  const HalfMatrix dense = random_half_matrix(32, 64, rng);
  const HalfMatrix pruned =
      NmMatrix::from_dense_magnitude(dense, {2, 4}).to_dense();
  const HalfMatrix b = random_half_matrix(64, 16, rng);

  const FloatMatrix ref = gemm_dense(pruned, b);
  EXPECT_LT(rel_fro_error(spmm_24(NmMatrix::compress(pruned, {2, 4}), b), ref),
            1e-5f);
  EXPECT_LT(rel_fro_error(spmm_csr(CsrMatrix::from_dense(pruned), b), ref),
            1e-5f);
  EXPECT_LT(rel_fro_error(spmm_cvse(CvseMatrix::from_dense(pruned, 1), b), ref),
            1e-5f);
}

}  // namespace
}  // namespace venom
