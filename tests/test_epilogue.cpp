// Tests for the fused-epilogue and batched Spatha kernels.
#include "spatha/epilogue.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"

namespace venom::spatha {
namespace {

VnmMatrix random_vnm(std::size_t rows, std::size_t cols, VnmConfig cfg,
                     std::uint64_t seed) {
  Rng rng(seed);
  return VnmMatrix::from_dense_magnitude(random_half_matrix(rows, cols, rng),
                                         cfg);
}

float gelu_ref(float v) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  return 0.5f * v *
         (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
}

TEST(Fused, NoEpilogueMatchesPlainSpmm) {
  Rng rng(1);
  const VnmMatrix a = random_vnm(16, 32, {4, 2, 8}, 2);
  const HalfMatrix b = random_half_matrix(32, 12, rng);
  const HalfMatrix fused = spmm_vnm_fused(a, b, {});
  const FloatMatrix plain = spmm_vnm(a, b);
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_EQ(fused.flat()[i].bits(), half_t(plain.flat()[i]).bits());
}

TEST(Fused, BiasIsPerRow) {
  Rng rng(2);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 3);
  const HalfMatrix b = random_half_matrix(16, 4, rng);
  std::vector<float> bias(8);
  for (std::size_t i = 0; i < 8; ++i) bias[i] = float(i) * 10.0f;
  Epilogue ep;
  ep.bias = bias;
  const HalfMatrix y = spmm_vnm_fused(a, b, ep);
  const FloatMatrix plain = spmm_vnm(a, b);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t n = 0; n < 4; ++n)
      EXPECT_NEAR(y(r, n).to_float(), plain(r, n) + bias[r],
                  0.05f + 0.01f * std::fabs(plain(r, n) + bias[r]));
}

TEST(Fused, ReluClampsNegatives) {
  Rng rng(3);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 4);
  const HalfMatrix b = random_half_matrix(16, 8, rng);
  Epilogue ep;
  ep.activation = Activation::kRelu;
  const HalfMatrix y = spmm_vnm_fused(a, b, ep);
  const FloatMatrix plain = spmm_vnm(a, b);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_GE(y.flat()[i].to_float(), 0.0f);
    const float expect = std::max(0.0f, plain.flat()[i]);
    EXPECT_NEAR(y.flat()[i].to_float(), expect,
                0.01f + 0.01f * std::fabs(expect));
  }
}

TEST(Fused, GeluMatchesReference) {
  Rng rng(4);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 5);
  const HalfMatrix b = random_half_matrix(16, 8, rng);
  Epilogue ep;
  ep.activation = Activation::kGelu;
  const HalfMatrix y = spmm_vnm_fused(a, b, ep);
  const FloatMatrix plain = spmm_vnm(a, b);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float expect = gelu_ref(plain.flat()[i]);
    EXPECT_NEAR(y.flat()[i].to_float(), expect,
                0.01f + 0.02f * std::fabs(expect));
  }
}

TEST(Fused, BiasPlusActivationOrder) {
  // Activation applies AFTER the bias: relu(-5 + 10) = 5, not relu(-5)+10.
  HalfMatrix dense(2, 8);
  dense(0, 0) = half_t(-5.0f);  // single nonzero -> product -5 * b
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(dense, {2, 2, 8});
  HalfMatrix b(8, 1);
  for (std::size_t r = 0; r < 8; ++r) b(r, 0) = half_t(1.0f);
  std::vector<float> bias = {10.0f, 10.0f};
  Epilogue ep;
  ep.bias = bias;
  ep.activation = Activation::kRelu;
  const HalfMatrix y = spmm_vnm_fused(a, b, ep);
  EXPECT_FLOAT_EQ(y(0, 0).to_float(), 5.0f);
  EXPECT_FLOAT_EQ(y(1, 0).to_float(), 10.0f);
}

TEST(Fused, RejectsWrongBiasSize) {
  Rng rng(5);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 6);
  const HalfMatrix b = random_half_matrix(16, 4, rng);
  std::vector<float> bias(7);
  Epilogue ep;
  ep.bias = bias;
  EXPECT_THROW(spmm_vnm_fused(a, b, ep), Error);
}

TEST(Batched, EachOutputMatchesSingleSpmm) {
  Rng rng(6);
  const VnmMatrix a = random_vnm(16, 40, {8, 2, 10}, 7);
  std::vector<HalfMatrix> bs;
  for (int i = 0; i < 3; ++i)
    bs.push_back(random_half_matrix(40, 24, rng));
  const auto cs = spmm_vnm_batched(a, bs);
  ASSERT_EQ(cs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_LT(rel_fro_error(cs[i], spmm_vnm(a, bs[i])), 1e-6f) << i;
}

TEST(Batched, SingleElementBatch) {
  Rng rng(7);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 8);
  std::vector<HalfMatrix> bs = {random_half_matrix(16, 8, rng)};
  const auto cs = spmm_vnm_batched(a, bs);
  EXPECT_LT(rel_fro_error(cs[0], spmm_vnm(a, bs[0])), 1e-6f);
}

TEST(Batched, RejectsMismatchedShapesAndEmptyBatch) {
  Rng rng(8);
  const VnmMatrix a = random_vnm(8, 16, {4, 2, 8}, 9);
  std::vector<HalfMatrix> bad = {random_half_matrix(16, 8, rng),
                                 random_half_matrix(16, 4, rng)};
  EXPECT_THROW(spmm_vnm_batched(a, bad), Error);
  EXPECT_THROW(spmm_vnm_batched(a, {}), Error);
}

}  // namespace
}  // namespace venom::spatha
