// Numerics and determinism tests: special-value propagation, fp16
// saturation behaviour in the kernels, and bitwise reproducibility of
// parallel execution across thread-pool sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "format/vnm.hpp"
#include "spatha/spmm.hpp"

namespace venom {
namespace {

TEST(Numerics, GemmPropagatesNan) {
  HalfMatrix a(2, 2), b(2, 2);
  a(0, 0) = half_t(std::numeric_limits<float>::quiet_NaN());
  a(1, 1) = half_t(1.0f);
  b(0, 0) = half_t(1.0f);
  b(1, 1) = half_t(1.0f);
  const FloatMatrix c = gemm_dense(a, b);
  EXPECT_TRUE(std::isnan(c(0, 0)));
  EXPECT_FALSE(std::isnan(c(1, 1)));
}

TEST(Numerics, GemmPropagatesInfinity) {
  HalfMatrix a(1, 2), b(2, 1);
  a(0, 0) = half_t(65504.0f);  // max finite half
  a(0, 1) = half_t(65504.0f);
  b(0, 0) = half_t(65504.0f);
  b(1, 0) = half_t(65504.0f);
  // 2 * 65504^2 ~ 8.6e9 fits fp32 comfortably: no spurious overflow,
  // because accumulation is fp32 even though operands are fp16.
  const FloatMatrix c = gemm_dense(a, b);
  EXPECT_FALSE(std::isinf(c(0, 0)));
  EXPECT_NEAR(c(0, 0), 2.0f * 65504.0f * 65504.0f, 1e6f);
}

TEST(Numerics, SpmmAccumulatesBeyondHalfRange) {
  // 4096 products of 4.0 * 4.0 = 65536 > max half (65504): a fp16
  // accumulator would overflow; the fp32 accumulator must not.
  const std::size_t k = 8192;
  HalfMatrix dense(1, k);
  for (std::size_t c = 0; c < k; c += 2) dense(0, c) = half_t(4.0f);
  const VnmMatrix a = VnmMatrix::compress(dense, {1, 2, 4});
  HalfMatrix b(k, 1);
  for (std::size_t r = 0; r < k; ++r) b(r, 0) = half_t(4.0f);
  const FloatMatrix c = spatha::spmm_vnm(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 4096.0f * 16.0f);
}

TEST(Numerics, SubnormalInputsContribute) {
  const float sub = 0x1.0p-24f;  // smallest half subnormal
  HalfMatrix a(1, 4), b(4, 1);
  a(0, 0) = half_t(sub);
  b(0, 0) = half_t(16384.0f);
  const FloatMatrix c = gemm_dense(a, b);
  EXPECT_NEAR(c(0, 0), sub * 16384.0f, 1e-9f);
}

TEST(Determinism, SpmmIdenticalAcrossPoolSizes) {
  // Tiles own disjoint output ranges and accumulate in a fixed order, so
  // results must be bitwise identical no matter how many workers run.
  Rng rng(1);
  const VnmConfig cfg{8, 2, 10};
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(
      random_half_matrix(64, 80, rng), cfg);
  const HalfMatrix b = random_half_matrix(80, 48, rng);

  ThreadPool pool1(1), pool4(4), pool7(7);
  const FloatMatrix c1 = spatha::spmm_vnm(a, b, &pool1);
  const FloatMatrix c4 = spatha::spmm_vnm(a, b, &pool4);
  const FloatMatrix c7 = spatha::spmm_vnm(a, b, &pool7);
  EXPECT_TRUE(c1 == c4);
  EXPECT_TRUE(c1 == c7);
}

TEST(Determinism, GemmIdenticalAcrossPoolSizes) {
  Rng rng(2);
  const HalfMatrix a = random_half_matrix(48, 96, rng);
  const HalfMatrix b = random_half_matrix(96, 32, rng);
  ThreadPool pool1(1), pool5(5);
  EXPECT_TRUE(gemm_dense(a, b, &pool1) == gemm_dense(a, b, &pool5));
}

TEST(Determinism, RepeatedRunsIdentical) {
  Rng rng(3);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(
      random_half_matrix(32, 40, rng), {4, 2, 10});
  const HalfMatrix b = random_half_matrix(40, 16, rng);
  const FloatMatrix first = spatha::spmm_vnm(a, b);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(spatha::spmm_vnm(a, b) == first);
}

TEST(Determinism, CompressionIsSeedStable) {
  // Same seed -> same pruning decisions -> identical compressed bytes.
  Rng a1(4), a2(4);
  const HalfMatrix w1 = random_half_matrix(32, 40, a1);
  const HalfMatrix w2 = random_half_matrix(32, 40, a2);
  const VnmMatrix v1 = VnmMatrix::from_dense_magnitude(w1, {8, 2, 10});
  const VnmMatrix v2 = VnmMatrix::from_dense_magnitude(w2, {8, 2, 10});
  EXPECT_EQ(v1.values().size(), v2.values().size());
  for (std::size_t i = 0; i < v1.values().size(); ++i)
    EXPECT_EQ(v1.values()[i].bits(), v2.values()[i].bits());
  EXPECT_EQ(v1.m_indices(), v2.m_indices());
  EXPECT_EQ(v1.column_locs(), v2.column_locs());
}

}  // namespace
}  // namespace venom
