// Tests for the plan-based execution API and plan cache, plus the
// Linear backward pass that builds on the transposed kernel.
#include "spatha/plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "baselines/gemm.hpp"
#include "common/rng.hpp"
#include "spatha/spmm.hpp"
#include "transformer/linear.hpp"

namespace venom::spatha {
namespace {

SpmmProblem problem(std::size_t r, std::size_t k, std::size_t c,
                    VnmConfig fmt) {
  return SpmmProblem{.rows = r, .cols = k, .b_cols = c, .format = fmt};
}

TEST(SpmmPlan, BuildAndExecuteMatchesDirectKernel) {
  Rng rng(1);
  const HalfMatrix w = random_half_matrix(32, 64, rng);
  const SpmmProblem p = problem(32, 64, 16, {8, 2, 8});
  const SpmmPlan plan = SpmmPlan::build(p, w);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  EXPECT_LT(rel_fro_error(plan.execute(b),
                          spmm_vnm(plan.compressed(), b)),
            1e-6f);
}

TEST(SpmmPlan, FusedExecution) {
  Rng rng(2);
  const HalfMatrix w = random_half_matrix(16, 32, rng);
  const SpmmProblem p = problem(16, 32, 8, {4, 2, 8});
  const SpmmPlan plan = SpmmPlan::build(p, w);
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  Epilogue ep;
  ep.activation = Activation::kRelu;
  const HalfMatrix y = plan.execute_fused(b, ep);
  for (auto v : y.flat()) EXPECT_GE(v.to_float(), 0.0f);
}

TEST(SpmmPlan, ValidatesShapes) {
  Rng rng(3);
  const HalfMatrix w = random_half_matrix(32, 64, rng);
  EXPECT_THROW(SpmmPlan::build(problem(32, 32, 16, {8, 2, 8}), w), Error);
  const SpmmPlan plan = SpmmPlan::build(problem(32, 64, 16, {8, 2, 8}), w);
  EXPECT_THROW(plan.execute(HalfMatrix(64, 8)), Error);   // wrong C
  EXPECT_THROW(plan.execute(HalfMatrix(32, 16)), Error);  // wrong K
}

TEST(SpmmPlan, FromCompressedChecksConsistency) {
  Rng rng(4);
  const VnmMatrix c = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 32, rng), {4, 2, 8});
  EXPECT_NO_THROW(SpmmPlan::from_compressed(problem(16, 32, 8, {4, 2, 8}),
                                            c));
  EXPECT_THROW(SpmmPlan::from_compressed(problem(16, 32, 8, {4, 2, 16}), c),
               Error);
}

TEST(WeightFingerprint, SensitiveToContentAndShape) {
  Rng rng(5);
  const HalfMatrix a = random_half_matrix(8, 8, rng);
  HalfMatrix b = a;
  EXPECT_EQ(weight_fingerprint(a), weight_fingerprint(b));
  b(3, 3) = b(3, 3) + half_t(1.0f);
  EXPECT_NE(weight_fingerprint(a), weight_fingerprint(b));
  // Same bytes, different shape.
  HalfMatrix c(4, 16);
  std::copy(a.flat().begin(), a.flat().end(), c.flat().begin());
  EXPECT_NE(weight_fingerprint(a), weight_fingerprint(c));
}

TEST(PlanCache, HitsOnRepeatAndEvictsLru) {
  Rng rng(6);
  PlanCache cache(2);
  const SpmmProblem p = problem(16, 32, 8, {4, 2, 8});
  const HalfMatrix w1 = random_half_matrix(16, 32, rng);
  const HalfMatrix w2 = random_half_matrix(16, 32, rng);
  const HalfMatrix w3 = random_half_matrix(16, 32, rng);

  const auto plan1 = cache.get_or_build(p, w1);
  EXPECT_EQ(cache.misses(), 1u);
  const auto plan1_again = cache.get_or_build(p, w1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(plan1.get(), plan1_again.get());  // same object

  cache.get_or_build(p, w2);
  cache.get_or_build(p, w3);  // evicts w1 (capacity 2)
  EXPECT_EQ(cache.size(), 2u);
  cache.get_or_build(p, w1);
  EXPECT_EQ(cache.misses(), 4u);  // w1 was rebuilt
}

TEST(PlanCache, DistinguishesProblems) {
  Rng rng(7);
  PlanCache cache(4);
  const HalfMatrix w = random_half_matrix(16, 32, rng);
  cache.get_or_build(problem(16, 32, 8, {4, 2, 8}), w);
  cache.get_or_build(problem(16, 32, 16, {4, 2, 8}), w);  // different C
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, RejectsZeroCapacity) {
  EXPECT_THROW(PlanCache(0), Error);
}

TEST(PlanCache, CompressedOperandsHitWithoutRepruning) {
  Rng rng(12);
  PlanCache cache(4);
  const SpmmProblem p = problem(16, 32, 8, {4, 2, 8});
  const VnmMatrix w = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 32, rng), {4, 2, 8});
  const auto plan = cache.get_or_build(p, w);
  const auto again = cache.get_or_build(p, w);
  EXPECT_EQ(plan.get(), again.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // The cached plan executes on the compressed operand as-is.
  const HalfMatrix b = random_half_matrix(32, 8, rng);
  EXPECT_EQ(max_abs_diff(plan->execute(b), spmm_vnm(w, b)), 0.0f);
}

TEST(PlanCache, ConcurrentGetOrBuildIsSafe) {
  Rng rng(13);
  PlanCache cache(8);
  const VnmMatrix w = VnmMatrix::from_dense_magnitude(
      random_half_matrix(16, 32, rng), {4, 2, 8});
  std::vector<std::thread> threads;
  std::atomic<std::size_t> served{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < 32; ++i) {
        const auto plan =
            cache.get_or_build(problem(16, 32, 8, {4, 2, 8}), w);
        if (plan != nullptr) served.fetch_add(1);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(served.load(), 128u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SpmmPlan, ScratchPoolWarmsAcrossExecutions) {
  Rng rng(14);
  const HalfMatrix w = random_half_matrix(32, 64, rng);
  const SpmmProblem p = problem(32, 64, 16, {8, 2, 8});
  const SpmmPlan plan = SpmmPlan::build(p, w);
  const HalfMatrix b = random_half_matrix(64, 16, rng);
  const FloatMatrix first = plan.execute(b);
  for (int i = 0; i < 4; ++i) {
    const FloatMatrix again = plan.execute(b);
    for (std::size_t e = 0; e < first.size(); ++e)
      ASSERT_EQ(again.flat()[e], first.flat()[e]);
  }
  // The pool is bounded by peak chunk concurrency (runners + caller), not
  // by execution count: 5 runs must not mean 5x the scratch.
  EXPECT_GE(plan.scratch().created(), 1u);
  EXPECT_LE(plan.scratch().created(), ThreadPool::global().size() + 1);
}

// ---- Linear backward (uses the transposed kernel) -------------------------

TEST(LinearBackward, GradInputMatchesDenseBackward) {
  Rng rng(8);
  transformer::Linear lin = transformer::Linear::random(16, 32, rng);
  lin.sparsify({4, 2, 8});
  const HalfMatrix x = random_half_matrix(32, 6, rng);
  const FloatMatrix grad_y = random_float_matrix(16, 6, rng);
  const auto grads = lin.backward(x, grad_y);
  const FloatMatrix ref = gemm_dense(
      transpose(lin.sparse_weight().to_dense()), to_half(grad_y));
  EXPECT_LT(rel_fro_error(grads.input, ref), 1e-5f);
}

TEST(LinearBackward, FiniteDifferenceOnLoss) {
  // L = sum(y); dL/db = tokens, dL/dW = sum_t x^T broadcast. Verify both
  // against finite differences through the actual forward pass.
  Rng rng(9);
  transformer::Linear lin = transformer::Linear::random(4, 8, rng);
  const HalfMatrix x = random_half_matrix(8, 3, rng);
  FloatMatrix grad_y(4, 3, 1.0f);  // dL/dy for L = sum(y)
  const auto grads = lin.backward(x, grad_y);

  EXPECT_EQ(grads.bias.size(), 4u);
  for (float b : grads.bias) EXPECT_FLOAT_EQ(b, 3.0f);

  // grad_weight(o, i) = sum_t x(i, t).
  for (std::size_t o = 0; o < 4; ++o)
    for (std::size_t i = 0; i < 8; ++i) {
      float expect = 0.0f;
      for (std::size_t t = 0; t < 3; ++t) expect += x(i, t).to_float();
      EXPECT_NEAR(grads.weight(o, i), expect, 5e-2f);
    }
}

TEST(LinearBackward, MaskConfinesGradientToPattern) {
  Rng rng(10);
  transformer::Linear lin = transformer::Linear::random(16, 32, rng);
  lin.sparsify({4, 2, 8});
  FloatMatrix grad(16, 32, 1.0f);
  lin.mask_gradient_to_pattern(grad);
  const HalfMatrix pattern = lin.sparse_weight().to_dense();
  std::size_t alive = 0;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 32; ++c) {
      if (pattern(r, c).is_zero()) {
        EXPECT_EQ(grad(r, c), 0.0f);
      } else {
        EXPECT_EQ(grad(r, c), 1.0f);
        ++alive;
      }
    }
  EXPECT_EQ(alive, 16u * 32 / 4);  // 2:8 density
}

TEST(LinearBackward, ShapeChecks) {
  Rng rng(11);
  transformer::Linear lin = transformer::Linear::random(4, 8, rng);
  EXPECT_THROW(lin.backward(HalfMatrix(8, 3), FloatMatrix(4, 2)), Error);
  EXPECT_THROW(lin.backward(HalfMatrix(4, 3), FloatMatrix(4, 3)), Error);
}

}  // namespace
}  // namespace venom::spatha
