// Tests for the native N:M compressed format.
#include "format/nm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace venom {
namespace {

HalfMatrix make_24_pattern() {
  // 2 rows x 8 cols, two nonzeros per group of 4.
  HalfMatrix m(2, 8);
  m(0, 0) = half_t(1.0f);
  m(0, 3) = half_t(2.0f);
  m(0, 5) = half_t(3.0f);
  m(0, 6) = half_t(4.0f);
  m(1, 1) = half_t(-1.0f);
  m(1, 2) = half_t(-2.0f);
  m(1, 4) = half_t(-3.0f);
  m(1, 7) = half_t(-4.0f);
  return m;
}

TEST(NmPattern, Sparsity) {
  EXPECT_DOUBLE_EQ((NmPattern{2, 4}).sparsity(), 0.5);
  EXPECT_DOUBLE_EQ((NmPattern{2, 8}).sparsity(), 0.75);
  EXPECT_DOUBLE_EQ((NmPattern{2, 20}).sparsity(), 0.9);
  EXPECT_DOUBLE_EQ((NmPattern{1, 2}).sparsity(), 0.5);
}

TEST(NmMatrix, CompressRoundTrip24) {
  const HalfMatrix dense = make_24_pattern();
  const NmMatrix c = NmMatrix::compress(dense, {2, 4});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 8u);
  EXPECT_EQ(c.groups_per_row(), 2u);
  EXPECT_TRUE(c.to_dense() == dense);
}

TEST(NmMatrix, ValuesAndIndicesLayout) {
  const NmMatrix c = NmMatrix::compress(make_24_pattern(), {2, 4});
  EXPECT_FLOAT_EQ(c.value(0, 0, 0).to_float(), 1.0f);
  EXPECT_EQ(c.index(0, 0, 0), 0);
  EXPECT_FLOAT_EQ(c.value(0, 0, 1).to_float(), 2.0f);
  EXPECT_EQ(c.index(0, 0, 1), 3);
  EXPECT_FLOAT_EQ(c.value(1, 1, 0).to_float(), -3.0f);
  EXPECT_EQ(c.index(1, 1, 0), 0);
}

TEST(NmMatrix, CompressRejectsNonConforming) {
  HalfMatrix bad(1, 4);
  bad(0, 0) = half_t(1.0f);
  bad(0, 1) = half_t(1.0f);
  bad(0, 2) = half_t(1.0f);  // 3 nonzeros in a 2:4 group
  EXPECT_THROW(NmMatrix::compress(bad, {2, 4}), Error);
  EXPECT_FALSE(NmMatrix::conforms(bad, {2, 4}));
  EXPECT_TRUE(NmMatrix::conforms(bad, {3, 4}));
}

TEST(NmMatrix, CompressRejectsBadShapes) {
  HalfMatrix m(2, 6);
  EXPECT_THROW(NmMatrix::compress(m, {2, 4}), Error);   // 6 % 4 != 0
  EXPECT_THROW(NmMatrix::compress(m, {4, 3}), Error);   // n > m
  EXPECT_THROW(NmMatrix::compress(m, {0, 3}), Error);   // n = 0
}

TEST(NmMatrix, MagnitudePruningKeepsLargest) {
  HalfMatrix dense(1, 4);
  dense(0, 0) = half_t(0.1f);
  dense(0, 1) = half_t(-5.0f);
  dense(0, 2) = half_t(0.2f);
  dense(0, 3) = half_t(3.0f);
  const NmMatrix c = NmMatrix::from_dense_magnitude(dense, {2, 4});
  const HalfMatrix pruned = c.to_dense();
  EXPECT_TRUE(pruned(0, 0).is_zero());
  EXPECT_FLOAT_EQ(pruned(0, 1).to_float(), -5.0f);
  EXPECT_TRUE(pruned(0, 2).is_zero());
  EXPECT_FLOAT_EQ(pruned(0, 3).to_float(), 3.0f);
}

TEST(NmMatrix, MagnitudeTieBreaksDeterministically) {
  HalfMatrix dense(1, 4, half_t(1.0f));  // all equal magnitude
  const NmMatrix c = NmMatrix::from_dense_magnitude(dense, {2, 4});
  const HalfMatrix pruned = c.to_dense();
  // Stable sort keeps the lowest column indices.
  EXPECT_FALSE(pruned(0, 0).is_zero());
  EXPECT_FALSE(pruned(0, 1).is_zero());
  EXPECT_TRUE(pruned(0, 2).is_zero());
  EXPECT_TRUE(pruned(0, 3).is_zero());
}

TEST(NmMatrix, ConformsAfterMagnitudePruning) {
  Rng rng(9);
  const HalfMatrix dense = random_half_matrix(16, 32, rng);
  for (const NmPattern p : {NmPattern{2, 4}, NmPattern{1, 2}, NmPattern{2, 8},
                            NmPattern{4, 16}}) {
    const HalfMatrix pruned = NmMatrix::from_dense_magnitude(dense, p).to_dense();
    EXPECT_TRUE(NmMatrix::conforms(pruned, p))
        << p.n << ':' << p.m;
    EXPECT_NEAR(density(pruned), double(p.n) / double(p.m), 1e-9);
  }
}

TEST(NmMatrix, PaddingIndicesAreValidSelectors) {
  HalfMatrix sparse(1, 4);  // entire group zero -> metadata fully padded
  const NmMatrix c = NmMatrix::compress(sparse, {2, 4});
  EXPECT_LT(c.index(0, 0, 0), 4);
  EXPECT_LT(c.index(0, 0, 1), 4);
  EXPECT_TRUE(c.value(0, 0, 0).is_zero());
}

TEST(NmMatrix, CompressedBytes24) {
  Rng rng(4);
  const HalfMatrix dense = random_half_matrix(16, 64, rng);
  const NmMatrix c = NmMatrix::from_dense_magnitude(dense, {2, 4});
  // 16*64/2 = 512 nonzeros: 1024 value bytes + 128 metadata bytes.
  EXPECT_EQ(c.nnz(), 512u);
  EXPECT_EQ(c.compressed_bytes(), 512u * 2 + 512u * 2 / 8);
  // Under half the dense footprint.
  EXPECT_LT(c.compressed_bytes(), 16u * 64 * 2 * 2 / 3);
}

TEST(NmMatrix, RoundTripRandomPatterns) {
  Rng rng(5);
  for (const NmPattern p :
       {NmPattern{2, 4}, NmPattern{2, 8}, NmPattern{2, 16}, NmPattern{3, 6}}) {
    const HalfMatrix pruned =
        NmMatrix::from_dense_magnitude(random_half_matrix(8, 48, rng), p)
            .to_dense();
    const NmMatrix c = NmMatrix::compress(pruned, p);
    EXPECT_TRUE(c.to_dense() == pruned) << p.n << ':' << p.m;
  }
}

}  // namespace
}  // namespace venom
