// Randomized property tests: cross-kernel equivalence, format-law
// invariants, and compression round-trips over fuzzed shapes and
// configurations. Each case draws its geometry from a seeded RNG so
// failures are reproducible from the gtest parameter.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "baselines/spmm_24.hpp"
#include "baselines/spmm_csr.hpp"
#include "baselines/spmm_cvse.hpp"
#include "common/rng.hpp"
#include "format/csr.hpp"
#include "format/cvse.hpp"
#include "pruning/policies.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/spmm.hpp"

namespace venom {
namespace {

/// Draws a random but valid V:N:M problem from a seed.
struct FuzzCase {
  VnmConfig cfg;
  std::size_t rows, cols, b_cols;
  HalfMatrix dense;
  HalfMatrix b;

  static FuzzCase draw(std::uint64_t seed) {
    Rng rng(seed);
    FuzzCase fc;
    const std::size_t ms[] = {4, 5, 7, 8, 10, 16, 20, 25, 32, 40, 50, 100};
    fc.cfg.m = ms[rng.uniform_index(std::size(ms))];
    fc.cfg.n = fc.cfg.m >= 4 ? 1 + rng.uniform_index(2) : 1;  // 1 or 2
    const std::size_t vs[] = {1, 2, 4, 8, 16, 32, 64};
    fc.cfg.v = vs[rng.uniform_index(std::size(vs))];
    fc.rows = fc.cfg.v * (1 + rng.uniform_index(4));
    fc.cols = fc.cfg.m * (1 + rng.uniform_index(8));
    fc.b_cols = 1 + rng.uniform_index(40);
    fc.dense = random_half_matrix(fc.rows, fc.cols, rng, 0.1f);
    fc.b = random_half_matrix(fc.cols, fc.b_cols, rng, 0.1f);
    return fc;
  }
};

class VnmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VnmFuzz, CompressionLaws) {
  const FuzzCase fc = FuzzCase::draw(1000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const HalfMatrix pruned = sparse.to_dense();

  // Law 1: pruning conforms to the declared pattern.
  EXPECT_TRUE(VnmMatrix::conforms(pruned, fc.cfg));
  // Law 2: compress(to_dense(x)) == x as a matrix.
  EXPECT_TRUE(VnmMatrix::compress(pruned, fc.cfg).to_dense() == pruned);
  // Law 3: nnz is exactly rows * groups * n.
  EXPECT_EQ(sparse.nnz(), fc.rows * (fc.cols / fc.cfg.m) * fc.cfg.n);
  // Law 4: every kept value exists identically in the dense origin.
  for (std::size_t r = 0; r < fc.rows; ++r)
    for (std::size_t c = 0; c < fc.cols; ++c)
      if (!pruned(r, c).is_zero()) {
        ASSERT_EQ(pruned(r, c).bits(), fc.dense(r, c).bits());
      }
  // Law 5: magnitude pruning keeps at least as much energy as zeroing
  // arbitrary positions would on average — concretely, at least n/m of
  // the total (the mean of a random selection).
  const double kept = l1_energy(pruned);
  const double total = l1_energy(fc.dense);
  EXPECT_GE(kept + 1e-9,
            total * double(fc.cfg.n) / double(fc.cfg.m));
}

TEST_P(VnmFuzz, KernelsAgree) {
  const FuzzCase fc = FuzzCase::draw(2000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);

  const FloatMatrix oracle = gemm_dense(sparse.to_dense(), fc.b);
  // Tiled Spatha.
  EXPECT_LT(rel_fro_error(spatha::spmm_vnm(sparse, fc.b), oracle), 1e-5f);
  // Naive reference.
  EXPECT_LT(rel_fro_error(spatha::spmm_vnm_reference(sparse, fc.b), oracle),
            1e-5f);
  // Fused path with empty epilogue (fp16 output tolerance).
  const HalfMatrix fused = spatha::spmm_vnm_fused(sparse, fc.b, {});
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_NEAR(fused.flat()[i].to_float(), oracle.flat()[i],
                0.02f + 0.01f * std::fabs(oracle.flat()[i]));
  // CSR kernel on the same pruned matrix.
  EXPECT_LT(rel_fro_error(
                spmm_csr(CsrMatrix::from_dense(sparse.to_dense()), fc.b),
                oracle),
            1e-5f);
}

TEST_P(VnmFuzz, RandomTileConfigsAgree) {
  const FuzzCase fc = FuzzCase::draw(3000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const FloatMatrix oracle = spatha::spmm_vnm_reference(sparse, fc.b);

  Rng rng(4000 + std::size_t(GetParam()));
  for (int trial = 0; trial < 3; ++trial) {
    spatha::SpmmConfig cfg;
    cfg.block_k = fc.cfg.m * (1 + rng.uniform_index(8));
    cfg.block_c = 1 + rng.uniform_index(fc.b_cols);
    cfg.batch_size = 1 + rng.uniform_index(4);
    cfg.store_width = rng.uniform() < 0.5f ? spatha::StoreWidth::k32bit
                                           : spatha::StoreWidth::k128bit;
    EXPECT_LT(rel_fro_error(spatha::spmm_vnm(sparse, fc.b, cfg), oracle),
              1e-5f)
        << cfg.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, VnmFuzz, ::testing::Range(0, 12));

class BaselineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BaselineFuzz, FormatsRoundTripArbitrarySparsity) {
  Rng rng(5000 + std::size_t(GetParam()));
  const std::size_t rows = 8 * (1 + rng.uniform_index(6));
  const std::size_t cols = 4 * (1 + rng.uniform_index(12));
  const double sparsity = 0.3 + 0.65 * rng.uniform();
  const HalfMatrix pruned = pruning::prune_unstructured(
      random_half_matrix(rows, cols, rng, 0.1f), sparsity);

  EXPECT_TRUE(CsrMatrix::from_dense(pruned).to_dense() == pruned);
  for (std::size_t l : {1u, 2u, 4u, 8u})
    if (rows % l == 0) {
      EXPECT_TRUE(CvseMatrix::from_dense(pruned, l).to_dense() == pruned)
          << "l=" << l;
    }
}

TEST_P(BaselineFuzz, Spmm24MmaAgreesOnRandomShapes) {
  Rng rng(6000 + std::size_t(GetParam()));
  const std::size_t rows = 16 * (1 + rng.uniform_index(4));
  const std::size_t cols = 32 * (1 + rng.uniform_index(6));
  const std::size_t b_cols = 8 * (1 + rng.uniform_index(6));
  const NmMatrix a = NmMatrix::from_dense_magnitude(
      random_half_matrix(rows, cols, rng, 0.1f), {2, 4});
  const HalfMatrix b = random_half_matrix(cols, b_cols, rng, 0.1f);
  EXPECT_LT(rel_fro_error(spmm_24_mma(a, b), spmm_24(a, b)), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BaselineFuzz, ::testing::Range(0, 10));

class EnergyLawFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EnergyLawFuzz, SelectionFreedomOrdersEnergy) {
  // Looser structure never retains less energy: ideal >= 1:N:M >= V:N:M
  // for any larger V, on any weight distribution.
  Rng rng(7000 + std::size_t(GetParam()));
  const HalfMatrix w = pruning::synthetic_bert_weight(
      64, 80, rng, 0.1 + 0.3 * rng.uniform(), 2.0f + 6.0f * rng.uniform());
  const std::size_t m = GetParam() % 2 == 0 ? 8 : 10;
  const VnmConfig small{1, 2, m};
  const VnmConfig mid{8, 2, m};
  const VnmConfig big{64, 2, m};
  const double ideal =
      pruning::energy(pruning::prune_unstructured(w, small.sparsity()), w);
  const double e1 = pruning::energy(pruning::prune_vnm(w, small), w);
  const double e8 = pruning::energy(pruning::prune_vnm(w, mid), w);
  const double e64 = pruning::energy(pruning::prune_vnm(w, big), w);
  EXPECT_GE(ideal + 1e-9, e1);
  EXPECT_GE(e1 + 1e-9, e8);
  EXPECT_GE(e8 + 1e-9, e64);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EnergyLawFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace venom
