// Randomized property tests: cross-kernel equivalence, format-law
// invariants, and compression round-trips over fuzzed shapes and
// configurations. Each case draws its geometry from a seeded RNG so
// failures are reproducible from the gtest parameter.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gemm.hpp"
#include "baselines/spmm_24.hpp"
#include "baselines/spmm_csr.hpp"
#include "baselines/spmm_cvse.hpp"
#include "common/rng.hpp"
#include "format/csr.hpp"
#include "format/cvse.hpp"
#include "pruning/policies.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/epilogue.hpp"
#include "spatha/sddmm.hpp"
#include "spatha/spmm.hpp"
#include "transformer/linear.hpp"

namespace venom {
namespace {

/// Draws a random but valid V:N:M problem from a seed.
struct FuzzCase {
  VnmConfig cfg;
  std::size_t rows, cols, b_cols;
  HalfMatrix dense;
  HalfMatrix b;

  static FuzzCase draw(std::uint64_t seed) {
    Rng rng(seed);
    FuzzCase fc;
    const std::size_t ms[] = {4, 5, 7, 8, 10, 16, 20, 25, 32, 40, 50, 100};
    fc.cfg.m = ms[rng.uniform_index(std::size(ms))];
    fc.cfg.n = fc.cfg.m >= 4 ? 1 + rng.uniform_index(2) : 1;  // 1 or 2
    const std::size_t vs[] = {1, 2, 4, 8, 16, 32, 64};
    fc.cfg.v = vs[rng.uniform_index(std::size(vs))];
    fc.rows = fc.cfg.v * (1 + rng.uniform_index(4));
    fc.cols = fc.cfg.m * (1 + rng.uniform_index(8));
    fc.b_cols = 1 + rng.uniform_index(40);
    fc.dense = random_half_matrix(fc.rows, fc.cols, rng, 0.1f);
    fc.b = random_half_matrix(fc.cols, fc.b_cols, rng, 0.1f);
    return fc;
  }
};

class VnmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VnmFuzz, CompressionLaws) {
  const FuzzCase fc = FuzzCase::draw(1000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const HalfMatrix pruned = sparse.to_dense();

  // Law 1: pruning conforms to the declared pattern.
  EXPECT_TRUE(VnmMatrix::conforms(pruned, fc.cfg));
  // Law 2: compress(to_dense(x)) == x as a matrix.
  EXPECT_TRUE(VnmMatrix::compress(pruned, fc.cfg).to_dense() == pruned);
  // Law 3: nnz is exactly rows * groups * n.
  EXPECT_EQ(sparse.nnz(), fc.rows * (fc.cols / fc.cfg.m) * fc.cfg.n);
  // Law 4: every kept value exists identically in the dense origin.
  for (std::size_t r = 0; r < fc.rows; ++r)
    for (std::size_t c = 0; c < fc.cols; ++c)
      if (!pruned(r, c).is_zero()) {
        ASSERT_EQ(pruned(r, c).bits(), fc.dense(r, c).bits());
      }
  // Law 5: magnitude pruning keeps at least as much energy as zeroing
  // arbitrary positions would on average — concretely, at least n/m of
  // the total (the mean of a random selection).
  const double kept = l1_energy(pruned);
  const double total = l1_energy(fc.dense);
  EXPECT_GE(kept + 1e-9,
            total * double(fc.cfg.n) / double(fc.cfg.m));
}

TEST_P(VnmFuzz, KernelsAgree) {
  const FuzzCase fc = FuzzCase::draw(2000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);

  const FloatMatrix oracle = gemm_dense(sparse.to_dense(), fc.b);
  // Tiled Spatha.
  EXPECT_LT(rel_fro_error(spatha::spmm_vnm(sparse, fc.b), oracle), 1e-5f);
  // Naive reference.
  EXPECT_LT(rel_fro_error(spatha::spmm_vnm_reference(sparse, fc.b), oracle),
            1e-5f);
  // Fused path with empty epilogue (fp16 output tolerance).
  const HalfMatrix fused = spatha::spmm_vnm_fused(sparse, fc.b, {});
  for (std::size_t i = 0; i < fused.size(); ++i)
    EXPECT_NEAR(fused.flat()[i].to_float(), oracle.flat()[i],
                0.02f + 0.01f * std::fabs(oracle.flat()[i]));
  // CSR kernel on the same pruned matrix.
  EXPECT_LT(rel_fro_error(
                spmm_csr(CsrMatrix::from_dense(sparse.to_dense()), fc.b),
                oracle),
            1e-5f);
}

TEST_P(VnmFuzz, RandomTileConfigsAgree) {
  const FuzzCase fc = FuzzCase::draw(3000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const FloatMatrix oracle = spatha::spmm_vnm_reference(sparse, fc.b);

  Rng rng(4000 + std::size_t(GetParam()));
  for (int trial = 0; trial < 3; ++trial) {
    spatha::SpmmConfig cfg;
    cfg.block_k = fc.cfg.m * (1 + rng.uniform_index(8));
    cfg.block_c = 1 + rng.uniform_index(fc.b_cols);
    cfg.batch_size = 1 + rng.uniform_index(4);
    cfg.store_width = rng.uniform() < 0.5f ? spatha::StoreWidth::k32bit
                                           : spatha::StoreWidth::k128bit;
    EXPECT_LT(rel_fro_error(spatha::spmm_vnm(sparse, fc.b, cfg), oracle),
              1e-5f)
        << cfg.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, VnmFuzz, ::testing::Range(0, 12));

class BaselineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BaselineFuzz, FormatsRoundTripArbitrarySparsity) {
  Rng rng(5000 + std::size_t(GetParam()));
  const std::size_t rows = 8 * (1 + rng.uniform_index(6));
  const std::size_t cols = 4 * (1 + rng.uniform_index(12));
  const double sparsity = 0.3 + 0.65 * rng.uniform();
  const HalfMatrix pruned = pruning::prune_unstructured(
      random_half_matrix(rows, cols, rng, 0.1f), sparsity);

  EXPECT_TRUE(CsrMatrix::from_dense(pruned).to_dense() == pruned);
  for (std::size_t l : {1u, 2u, 4u, 8u})
    if (rows % l == 0) {
      EXPECT_TRUE(CvseMatrix::from_dense(pruned, l).to_dense() == pruned)
          << "l=" << l;
    }
}

TEST_P(BaselineFuzz, Spmm24MmaAgreesOnRandomShapes) {
  Rng rng(6000 + std::size_t(GetParam()));
  const std::size_t rows = 16 * (1 + rng.uniform_index(4));
  const std::size_t cols = 32 * (1 + rng.uniform_index(6));
  const std::size_t b_cols = 8 * (1 + rng.uniform_index(6));
  const NmMatrix a = NmMatrix::from_dense_magnitude(
      random_half_matrix(rows, cols, rng, 0.1f), {2, 4});
  const HalfMatrix b = random_half_matrix(cols, b_cols, rng, 0.1f);
  EXPECT_LT(rel_fro_error(spmm_24_mma(a, b), spmm_24(a, b)), 2e-2f);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BaselineFuzz, ::testing::Range(0, 10));

class EnergyLawFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EnergyLawFuzz, SelectionFreedomOrdersEnergy) {
  // Looser structure never retains less energy: ideal >= 1:N:M >= V:N:M
  // for any larger V, on any weight distribution.
  Rng rng(7000 + std::size_t(GetParam()));
  const HalfMatrix w = pruning::synthetic_bert_weight(
      64, 80, rng, 0.1 + 0.3 * rng.uniform(), 2.0f + 6.0f * rng.uniform());
  const std::size_t m = GetParam() % 2 == 0 ? 8 : 10;
  const VnmConfig small{1, 2, m};
  const VnmConfig mid{8, 2, m};
  const VnmConfig big{64, 2, m};
  const double ideal =
      pruning::energy(pruning::prune_unstructured(w, small.sparsity()), w);
  const double e1 = pruning::energy(pruning::prune_vnm(w, small), w);
  const double e8 = pruning::energy(pruning::prune_vnm(w, mid), w);
  const double e64 = pruning::energy(pruning::prune_vnm(w, big), w);
  EXPECT_GE(ideal + 1e-9, e1);
  EXPECT_GE(e1 + 1e-9, e8);
  EXPECT_GE(e8 + 1e-9, e64);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EnergyLawFuzz, ::testing::Range(0, 8));

// --------------------------------------------------- gradient checks
//
// The backward kernels are validated two ways per fuzzed problem:
// (1) parity of the fast paths against their scalar oracles, and
// (2) finite differences: the transposed SpMM and the SDDMM must be the
//     exact adjoints of the *forward* spmm_vnm — under both
//     ColumnLocModes, since kFixed changes which dense coordinates every
//     nonzero touches. All FD deltas are computed from the actually-
//     rounded fp16 operands, so fp16 quantization cannot masquerade as
//     gradient error; the acceptance tolerance is 1e-2 relative.

double inner_cs(const FloatMatrix& a, const FloatMatrix& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += double(a.flat()[i]) * double(b.flat()[i]);
  return acc;
}

double grad_rel_err(double fd, double an) {
  return std::fabs(fd - an) / std::max({std::fabs(fd), std::fabs(an), 1e-4});
}

class GradFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GradFuzz, TransposedMatchesScalarOracleBothModes) {
  const FuzzCase fc = FuzzCase::draw(8000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  // B here plays dL/dy: shape (rows x any width).
  Rng rng(8100 + std::size_t(GetParam()));
  const HalfMatrix gy = random_half_matrix(fc.rows, 1 + rng.uniform_index(24),
                                           rng, 0.1f);
  for (const spatha::ColumnLocMode mode :
       {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
    spatha::SpmmConfig cfg = spatha::select_config_heuristic(
        fc.cfg, fc.rows, fc.cols, gy.cols());
    cfg.column_loc = mode;
    const FloatMatrix fast =
        spatha::spmm_vnm_transposed(sparse, gy, cfg);
    const FloatMatrix oracle =
        spatha::spmm_vnm_transposed_scalar(sparse, gy, mode);
    EXPECT_LT(rel_fro_error(fast, oracle), 1e-5f)
        << "mode=" << int(mode);
  }
}

TEST_P(GradFuzz, SddmmMatchesScalarOracleBothModes) {
  const FuzzCase fc = FuzzCase::draw(9000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  Rng rng(9100 + std::size_t(GetParam()));
  const std::size_t depth = 1 + rng.uniform_index(24);
  const HalfMatrix a = random_half_matrix(fc.rows, depth, rng, 0.1f);
  const HalfMatrix b = random_half_matrix(depth, fc.cols, rng, 0.1f);
  for (const spatha::ColumnLocMode mode :
       {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
    spatha::SpmmConfig cfg =
        spatha::select_config_heuristic(fc.cfg, fc.rows, fc.cols, depth);
    cfg.column_loc = mode;
    cfg.chunk_grain = 1 + rng.uniform_index(3);  // exercise the partition
    const VnmMatrix fast = spatha::sddmm_vnm(sparse, a, b, cfg);
    const VnmMatrix oracle = spatha::sddmm_vnm_scalar(sparse, a, b, mode);
    ASSERT_EQ(fast.values().size(), oracle.values().size());
    for (std::size_t i = 0; i < fast.values().size(); ++i) {
      const float o = oracle.values()[i].to_float();
      EXPECT_NEAR(fast.values()[i].to_float(), o,
                  0.005f + 0.01f * std::fabs(o))
          << "mode=" << int(mode) << " i=" << i;
    }
  }
}

TEST_P(GradFuzz, TransposedIsAdjointOfForwardBothModes) {
  // f(B) = <S, spmm_vnm(A, B, mode)>  =>  df/dB = spmm_vnm_t(A, S, mode).
  const FuzzCase fc = FuzzCase::draw(10000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  Rng rng(10100 + std::size_t(GetParam()));
  const HalfMatrix s = random_half_matrix(fc.rows, fc.b_cols, rng, 0.1f);
  FloatMatrix s_f = to_float(s);

  for (const spatha::ColumnLocMode mode :
       {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
    spatha::SpmmConfig cfg = spatha::select_config_heuristic(
        fc.cfg, fc.rows, fc.cols, fc.b_cols);
    cfg.column_loc = mode;
    const FloatMatrix grad_b =
        spatha::spmm_vnm_transposed(sparse, s, cfg);

    // Directional FD from the actually-rounded fp16 perturbations.
    HalfMatrix b_plus(fc.cols, fc.b_cols), b_minus(fc.cols, fc.b_cols);
    FloatMatrix delta(fc.cols, fc.b_cols);
    const float h = 0.02f;
    for (std::size_t i = 0; i < fc.b.size(); ++i) {
      const float v = fc.b.flat()[i].to_float();
      const float d = rng.normal();
      b_plus.flat()[i] = half_t(v + h * d);
      b_minus.flat()[i] = half_t(v - h * d);
      delta.flat()[i] =
          b_plus.flat()[i].to_float() - b_minus.flat()[i].to_float();
    }
    const double fd =
        inner_cs(s_f, spatha::spmm_vnm(sparse, b_plus, cfg)) -
        inner_cs(s_f, spatha::spmm_vnm(sparse, b_minus, cfg));
    const double an = inner_cs(grad_b, delta);
    EXPECT_LT(grad_rel_err(fd, an), 1e-2) << "mode=" << int(mode);
  }
}

TEST_P(GradFuzz, SddmmIsAdjointOfForwardValuesBothModes) {
  // f(vals) = <S, spmm_vnm(A(vals), B, mode)>  =>
  //   df/dvals = sddmm_vnm(A, S, B^T, mode) slot by slot.
  const FuzzCase fc = FuzzCase::draw(11000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  Rng rng(11100 + std::size_t(GetParam()));
  const HalfMatrix s = random_half_matrix(fc.rows, fc.b_cols, rng, 0.1f);
  const FloatMatrix s_f = to_float(s);
  const HalfMatrix bt = transpose(fc.b);

  for (const spatha::ColumnLocMode mode :
       {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
    spatha::SpmmConfig cfg = spatha::select_config_heuristic(
        fc.cfg, fc.rows, fc.cols, fc.b_cols);
    cfg.column_loc = mode;
    const VnmMatrix grad_vals = spatha::sddmm_vnm(sparse, s, bt, cfg);

    // Perturb the compressed values directly (zero slots are padding —
    // the kernels skip them, so they stay untouched).
    std::vector<half_t> vp = sparse.values(), vm = sparse.values();
    std::vector<float> delta(vp.size(), 0.0f);
    const float h = 0.02f;
    for (std::size_t i = 0; i < vp.size(); ++i) {
      if (vp[i].is_zero()) continue;
      const float v = vp[i].to_float();
      const float d = rng.normal();
      vp[i] = half_t(v + h * d);
      vm[i] = half_t(v - h * d);
      // A perturbed value landing on exact zero would change the
      // kernels' skip set; nudge it off zero.
      if (vp[i].is_zero()) vp[i] = half_t(v + 2.0f * h * std::fabs(d) + h);
      if (vm[i].is_zero()) vm[i] = half_t(v - 2.0f * h * std::fabs(d) - h);
      delta[i] = vp[i].to_float() - vm[i].to_float();
    }
    const VnmMatrix a_plus = VnmMatrix::from_parts(
        fc.cfg, fc.rows, fc.cols, vp, sparse.m_indices(),
        sparse.column_locs());
    const VnmMatrix a_minus = VnmMatrix::from_parts(
        fc.cfg, fc.rows, fc.cols, vm, sparse.m_indices(),
        sparse.column_locs());
    const double fd =
        inner_cs(s_f, spatha::spmm_vnm(a_plus, fc.b, cfg)) -
        inner_cs(s_f, spatha::spmm_vnm(a_minus, fc.b, cfg));
    double an = 0.0;
    for (std::size_t i = 0; i < delta.size(); ++i)
      an += double(grad_vals.values()[i].to_float()) * double(delta[i]);
    EXPECT_LT(grad_rel_err(fd, an), 1e-2) << "mode=" << int(mode);
  }
}

TEST_P(GradFuzz, LinearBackwardFiniteDifference) {
  // Dense and sparse Linear::backward against directional FD of the
  // half-precision forward, over the fuzzed ragged geometry.
  const FuzzCase fc = FuzzCase::draw(12000 + std::size_t(GetParam()));
  Rng rng(12100 + std::size_t(GetParam()));
  const std::size_t tokens = 1 + rng.uniform_index(16);
  const HalfMatrix x = random_half_matrix(fc.cols, tokens, rng, 0.5f);
  FloatMatrix t(fc.rows, tokens);
  for (auto& v : t.flat()) v = 0.1f * rng.normal();

  std::vector<float> bias(fc.rows);
  for (auto& v : bias) v = 0.1f * rng.normal();

  for (const bool sparse : {false, true}) {
    transformer::Linear layer(fc.dense, bias);
    if (sparse) layer.sparsify(fc.cfg);

    const auto loss = [&](const HalfMatrix& xx) {
      const HalfMatrix y = layer.forward(xx);
      double acc = 0.0;
      for (std::size_t i = 0; i < y.size(); ++i) {
        const double d =
            double(y.flat()[i].to_float()) - double(t.flat()[i]);
        acc += 0.5 * d * d;
      }
      return acc;
    };
    const HalfMatrix y = layer.forward(x);
    FloatMatrix gy(fc.rows, tokens);
    for (std::size_t i = 0; i < gy.size(); ++i)
      gy.flat()[i] = y.flat()[i].to_float() - t.flat()[i];
    const transformer::Linear::Grads g = layer.backward(x, gy);

    // Directional FD aggregated over several directions (RMS of the
    // disagreement over the RMS analytic derivative): a single direction
    // can land where the derivative nearly cancels, turning the fp16
    // noise floor into an arbitrary relative error. The loss is
    // quadratic in x and W, so central differences carry no curvature
    // error and a generous step safely drowns the rounding noise.
    const float h = 0.1f;
    const int dirs = 4;

    double num_x = 0.0, den_x = 0.0;
    for (int k = 0; k < dirs; ++k) {
      HalfMatrix xp(fc.cols, tokens), xm(fc.cols, tokens);
      FloatMatrix dx(fc.cols, tokens);
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float v = x.flat()[i].to_float();
        const float d = rng.normal();
        xp.flat()[i] = half_t(v + h * d);
        xm.flat()[i] = half_t(v - h * d);
        dx.flat()[i] = xp.flat()[i].to_float() - xm.flat()[i].to_float();
      }
      const double fd_x = loss(xp) - loss(xm);
      const double an_x = inner_cs(g.input, dx);
      num_x += (fd_x - an_x) * (fd_x - an_x);
      den_x += an_x * an_x;
    }
    EXPECT_LT(std::sqrt(num_x / std::max(den_x, 1e-12)), 1e-2)
        << "sparse=" << sparse << " (input)";

    // Weight directions (surviving coordinates only when sparse).
    const auto loss_of = [&](const transformer::Linear& l) {
      const HalfMatrix yy = l.forward(x);
      double acc = 0.0;
      for (std::size_t i = 0; i < yy.size(); ++i) {
        const double d =
            double(yy.flat()[i].to_float()) - double(t.flat()[i]);
        acc += 0.5 * d * d;
      }
      return acc;
    };
    const HalfMatrix w0 =
        sparse ? layer.sparse_weight().to_dense() : layer.dense_weight();
    double num_w = 0.0, den_w = 0.0;
    for (int k = 0; k < dirs; ++k) {
      HalfMatrix wp = w0, wm = w0;
      FloatMatrix dw(fc.rows, fc.cols);
      for (std::size_t i = 0; i < w0.size(); ++i) {
        if (sparse && w0.flat()[i].is_zero()) continue;
        const float v = w0.flat()[i].to_float();
        const float d = rng.normal();
        wp.flat()[i] = half_t(v + h * d);
        wm.flat()[i] = half_t(v - h * d);
        dw.flat()[i] = wp.flat()[i].to_float() - wm.flat()[i].to_float();
      }
      transformer::Linear lp(wp, bias), lm(wm, bias);
      if (sparse) {
        lp.sparsify(fc.cfg);
        lm.sparsify(fc.cfg);
      }
      const double fd_w = loss_of(lp) - loss_of(lm);
      const double an_w = inner_cs(g.weight, dw);
      num_w += (fd_w - an_w) * (fd_w - an_w);
      den_w += an_w * an_w;
    }
    EXPECT_LT(std::sqrt(num_w / std::max(den_w, 1e-12)), 1e-2)
        << "sparse=" << sparse << " (weight)";
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, GradFuzz, ::testing::Range(0, 10));

// ----------------------------------------------------- quantization
//
// The int8/fp8 containers share the V:N:M structure verbatim, so the
// laws here are about the values only: symmetric int8 round-trips
// within half a row scale, fp8 decode is exact (the loss happened at
// encode time), zero rows stay exactly zero with a zero scale, and the
// largest magnitude in every row saturates to the +-127 codes. Kernel
// parity (fast == scalar, bit for bit) rides the same fuzzed geometry
// as the gradient checks above.

using quant::Fp8VnmMatrix;
using quant::QuantizedVnmMatrix;
using quant::spmm_vnm_fp8;
using quant::spmm_vnm_fp8_scalar;
using quant::spmm_vnm_i8;
using quant::spmm_vnm_i8_scalar;

class QuantFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QuantFuzz, Int8RoundTripBoundedByHalfScale) {
  const FuzzCase fc = FuzzCase::draw(13000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(sparse);
  const VnmMatrix back = q.dequantize();

  // Structure is shared untouched.
  EXPECT_EQ(back.m_indices(), sparse.m_indices());
  EXPECT_EQ(back.column_locs(), sparse.column_locs());
  ASSERT_EQ(back.values().size(), sparse.values().size());

  for (std::size_t r = 0; r < sparse.rows(); ++r) {
    const float scale = q.row_scale(r);
    const std::size_t per_row = sparse.values().size() / sparse.rows();
    for (std::size_t i = 0; i < per_row; ++i) {
      const float orig = sparse.values()[r * per_row + i].to_float();
      const float dq = back.values()[r * per_row + i].to_float();
      // Half a quantization step, plus the fp16 rounding of the
      // dequantized product (one ulp at that magnitude).
      const float tol = 0.5f * scale + 2e-3f * std::fabs(orig) + 1e-7f;
      EXPECT_NEAR(dq, orig, tol) << "r=" << r << " i=" << i;
      // Exact zeros survive quantization exactly (structure law: the
      // kernels' skip set must not change).
      if (orig == 0.0f) {
        EXPECT_EQ(dq, 0.0f);
      }
    }
  }
}

TEST_P(QuantFuzz, Int8ZeroRowsGetZeroScaleAndStayZero) {
  FuzzCase fc = FuzzCase::draw(14000 + std::size_t(GetParam()));
  // Kill a deterministic subset of rows entirely.
  for (std::size_t r = 0; r < fc.rows; r += 2)
    for (std::size_t c = 0; c < fc.cols; ++c) fc.dense(r, c) = half_t(0.0f);
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(sparse);
  const std::size_t per_row = q.values().size() / fc.rows;
  for (std::size_t r = 0; r < fc.rows; r += 2) {
    EXPECT_EQ(q.row_scale(r), 0.0f) << "r=" << r;
    for (std::size_t i = 0; i < per_row; ++i)
      EXPECT_EQ(q.values()[r * per_row + i], 0) << "r=" << r;
  }
  // And the round trip keeps them zero.
  const VnmMatrix back = q.dequantize();
  for (std::size_t r = 0; r < fc.rows; r += 2)
    for (std::size_t i = 0; i < per_row; ++i)
      EXPECT_TRUE(back.values()[r * per_row + i].is_zero());
}

TEST_P(QuantFuzz, Int8RowMaximaSaturateToFullCode) {
  const FuzzCase fc = FuzzCase::draw(15000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(sparse);
  const std::size_t per_row = sparse.values().size() / sparse.rows();
  for (std::size_t r = 0; r < sparse.rows(); ++r) {
    float max_abs = 0.0f;
    int max_code = 0;
    for (std::size_t i = 0; i < per_row; ++i) {
      const float v =
          std::fabs(sparse.values()[r * per_row + i].to_float());
      max_abs = std::max(max_abs, v);
      max_code = std::max<int>(
          max_code, std::abs(int(q.values()[r * per_row + i])));
    }
    if (max_abs == 0.0f) continue;
    // The row maximum maps to the extreme code, and nothing overflows
    // past it: the symmetric scheme never emits -128.
    EXPECT_EQ(max_code, 127) << "r=" << r;
  }
}

TEST_P(QuantFuzz, Fp8DecodeThenEncodeIsIdentity) {
  const FuzzCase fc = FuzzCase::draw(16000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    const Fp8VnmMatrix q = Fp8VnmMatrix::quantize(sparse, fmt);
    // dequantize() is exact, so re-encoding reproduces the codes.
    const Fp8VnmMatrix again = Fp8VnmMatrix::quantize(q.dequantize(), fmt);
    EXPECT_EQ(again.values(), q.values())
        << "format=" << to_string(fmt);
  }
}

TEST_P(QuantFuzz, KernelParityInt8BothModes) {
  const FuzzCase fc = FuzzCase::draw(17000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  const QuantizedVnmMatrix q = QuantizedVnmMatrix::quantize(sparse);
  for (const spatha::ColumnLocMode mode :
       {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
    spatha::SpmmConfig cfg = spatha::select_config_heuristic(
        fc.cfg, fc.rows, fc.cols, fc.b_cols);
    cfg.column_loc = mode;
    const FloatMatrix fast = spmm_vnm_i8(q, fc.b, cfg);
    const FloatMatrix oracle = spmm_vnm_i8_scalar(q, fc.b, mode);
    ASSERT_EQ(fast.size(), oracle.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
      ASSERT_EQ(fast.flat()[i], oracle.flat()[i])
          << "mode=" << int(mode) << " i=" << i;
  }
}

TEST_P(QuantFuzz, KernelParityFp8BothModesBothFormats) {
  const FuzzCase fc = FuzzCase::draw(18000 + std::size_t(GetParam()));
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(fc.dense, fc.cfg);
  for (const Fp8Format fmt : {Fp8Format::kE5M2, Fp8Format::kE4M3}) {
    const Fp8VnmMatrix q = Fp8VnmMatrix::quantize(sparse, fmt);
    for (const spatha::ColumnLocMode mode :
         {spatha::ColumnLocMode::kEnabled, spatha::ColumnLocMode::kFixed}) {
      spatha::SpmmConfig cfg = spatha::select_config_heuristic(
          fc.cfg, fc.rows, fc.cols, fc.b_cols);
      cfg.column_loc = mode;
      const FloatMatrix fast = spmm_vnm_fp8(q, fc.b, cfg);
      const FloatMatrix oracle = spmm_vnm_fp8_scalar(q, fc.b, mode);
      ASSERT_EQ(fast.size(), oracle.size());
      for (std::size_t i = 0; i < fast.size(); ++i)
        ASSERT_EQ(fast.flat()[i], oracle.flat()[i])
            << "format=" << to_string(fmt) << " mode=" << int(mode)
            << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, QuantFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace venom
