// 20-line smoke consumer: prune a weight to V:N:M and dispatch the SpMM
// through the installed package's venom::ops API.
#include <cstdio>

#include "common/rng.hpp"
#include "ops/ops.hpp"

int main() {
  using namespace venom;
  Rng rng(7);
  const HalfMatrix w = random_half_matrix(32, 64, rng);
  const HalfMatrix x = random_half_matrix(64, 8, rng);
  const VnmMatrix sparse = VnmMatrix::from_dense_magnitude(w, {8, 2, 8});

  ops::ExecContext ctx;
  const FloatMatrix y = ops::matmul(ops::MatmulArgs::make(sparse, x), ctx);
  const auto& backend =
      ops::BackendRegistry::instance().select(
          ops::MatmulArgs::make(sparse, x).desc());
  std::printf("consumer ok: %zux%zu via %s\n", y.rows(), y.cols(),
              std::string(backend.name()).c_str());
  return y.rows() == 32 && y.cols() == 8 ? 0 : 1;
}
