// Determinism: the fine-tune loop and the batched serving engine must be
// bit-identical run to run under the same seed. All seeds derive from
// Rng::seeded labels (the consolidated seeding surface), so this suite
// also locks the label -> stream mapping: silently changing it would
// invalidate every recorded loss curve and golden measurement.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/rng.hpp"
#include "pruning/finetune.hpp"
#include "serving/engine.hpp"
#include "transformer/encoder.hpp"
#include "workloads/generators.hpp"

namespace venom {
namespace {

TEST(Determinism, SeededRngIsStableAndLabelSeparated) {
  // Compare FIRST draws of fresh generators throughout: a stream that
  // wrongly ignored its index/label would only be caught on the first
  // draw (later draws of an advanced generator differ trivially).
  const std::uint64_t base = Rng::seeded("determinism-check")();
  EXPECT_EQ(Rng::seeded("determinism-check")(), base);
  EXPECT_NE(Rng::seeded("determinism-check", 1)(), base);
  EXPECT_NE(Rng::seeded("other-label")(), base);
}

TEST(Determinism, FinetuneLoopIsBitIdentical) {
  const auto run = [] {
    Rng task_rng = Rng::seeded("determinism-finetune-task");
    const workloads::RegressionTask task =
        workloads::regression_task(32, 64, 48, task_rng);
    Rng student_rng = Rng::seeded("determinism-finetune-student");
    transformer::Linear student =
        transformer::Linear::random(32, 64, student_rng);
    pruning::SparseFinetuneConfig cfg;
    cfg.format = {4, 2, 8};
    cfg.steps = 10;
    const pruning::SparseFinetuneReport report =
        pruning::finetune_linear(student, task, cfg);
    return std::make_pair(report, student);
  };

  const auto [r1, s1] = run();
  const auto [r2, s2] = run();

  // Loss curves agree to the bit (double equality, not tolerance).
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i)
    EXPECT_EQ(r1.curve[i], r2.curve[i]) << i;
  EXPECT_EQ(r1.post_prune_loss, r2.post_prune_loss);
  EXPECT_EQ(r1.final_loss, r2.final_loss);

  // Final compressed weights and biases agree to the bit.
  const auto& v1 = s1.sparse_weight().values();
  const auto& v2 = s2.sparse_weight().values();
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i)
    EXPECT_EQ(v1[i].bits(), v2[i].bits()) << i;
  EXPECT_EQ(s1.sparse_weight().m_indices(), s2.sparse_weight().m_indices());
  ASSERT_EQ(s1.bias().size(), s2.bias().size());
  for (std::size_t i = 0; i < s1.bias().size(); ++i)
    EXPECT_EQ(s1.bias()[i], s2.bias()[i]) << i;
}

TEST(Determinism, BatchedServingIsBitIdentical) {
  const transformer::ModelConfig mc{.name = "det", .layers = 1, .hidden = 64,
                                    .heads = 4, .ffn_hidden = 128,
                                    .seq_len = 4};
  const auto run = [&] {
    Rng rng = Rng::seeded("determinism-serving-model");
    transformer::Encoder enc(mc, rng);
    enc.sparsify({8, 2, 8});
    serving::InferenceEngine engine(std::move(enc), {});
    std::vector<std::future<serving::Response>> futs;
    for (std::size_t i = 0; i < 12; ++i) {
      Rng rng_i = Rng::seeded("determinism-serving-trace", i);
      serving::Request req;
      req.input = random_half_matrix(64, 4, rng_i, 0.5f);
      futs.push_back(engine.submit(std::move(req)));
    }
    std::vector<HalfMatrix> outs;
    outs.reserve(futs.size());
    for (auto& f : futs) outs.push_back(std::move(f.get().output));
    return outs;
  };

  const std::vector<HalfMatrix> a = run();
  const std::vector<HalfMatrix> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << i;
    for (std::size_t j = 0; j < a[i].size(); ++j)
      EXPECT_EQ(a[i].flat()[j].bits(), b[i].flat()[j].bits())
          << "request " << i << " element " << j;
  }
}

}  // namespace
}  // namespace venom
