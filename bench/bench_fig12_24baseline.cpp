// Regenerates Fig. 12: baseline performance at 50% sparsity (2:4 format),
// cuBLAS vs cuSparseLt vs Spatha, on BERT-base (768 x K x 4096) and
// BERT-large (1024 x K x 4096) layer shapes across K. Reports TFLOPS/s
// (dense-equivalent FLOPs) and speedup over cuBLAS.
#include <cstdio>

#include "bench_util.hpp"
#include "gpumodel/kernel_models.hpp"

using namespace venom;
using namespace venom::gpumodel;

namespace {

void panel(const DeviceSpec& dev, std::size_t r, const char* name) {
  std::printf("\n(%s)  M=%zu, N=4096\n", name, r);
  bench::header({"K", "cuBLAS", "cuSpLt", "Spatha", "sp(cuSpLt)",
                 "sp(Spatha)"});
  const VnmConfig fmt24{128, 2, 4};
  for (std::size_t k = 768; k <= 12288; k += 768) {
    const GemmShape g{r, k, 4096};
    const double t_blas = cublas_gemm(dev, g).total();
    const double t_lt = cusparselt_spmm(dev, g).total();
    const double t_sp = spatha_spmm(dev, g, fmt24).total();
    bench::cell(double(k), "%.0f");
    bench::cell(g.flops() / t_blas / 1e12, "%.1f");
    bench::cell(g.flops() / t_lt / 1e12, "%.1f");
    bench::cell(g.flops() / t_sp / 1e12, "%.1f");
    bench::cell(t_blas / t_lt);
    bench::cell(t_blas / t_sp);
    bench::endrow();
  }
}

}  // namespace

int main() {
  bench::banner("Figure 12 — baseline performance at 50% sparsity (2:4)",
                "TFLOPS/s (dense-equivalent) and speedup w.r.t. cuBLAS; "
                "modeled RTX 3090");
  const DeviceSpec& dev = rtx3090();
  panel(dev, 768, "a: BERT-base");
  panel(dev, 1024, "b: BERT-large");
  std::printf(
      "\nExpected shape (paper): sparse libraries improve with K; Spatha\n"
      "beats cuSparseLt on small GEMMs (up to ~1.38x) and matches it on\n"
      "large ones; both stay below the theoretical 2x over cuBLAS.\n");
  return 0;
}
