// Regenerates Fig. 11: energy evaluation of the V:N:M format against
// unstructured ("ideal") and vector-wise pruning on a BERT-base-sized
// encoder weight (768 x 768). This experiment is fully computational —
// no GPU model involved; the weight matrix is synthesized with the
// outlier-column structure of trained BERT encoders (DESIGN.md #2).
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "pruning/policies.hpp"

using namespace venom;
using namespace venom::pruning;

int main() {
  bench::banner(
      "Figure 11 — energy of pruning policies (BERT-base 768x768 layer)",
      "energy = l1(pruned)/l1(dense); higher is better; sparsity via N:M");

  // 768 rows (divisible by every V and vw length used); 800 columns so
  // every M in {4, 5, 8, 10, 20, 40} divides exactly (the paper's 768-wide
  // layer needs padding for M not dividing 768 — 800 keeps the experiment
  // exact without changing its statistics).
  Rng rng(2023);
  const HalfMatrix w = synthetic_bert_weight(768, 800, rng);

  struct Point {
    const char* label;
    std::size_t n, m;
    double sparsity;
  };
  const Point points[] = {
      {"50% (2:4)", 2, 4, 0.50},   {"60% (2:5)", 2, 5, 0.60},
      {"75% (2:8)", 2, 8, 0.75},   {"80% (2:10)", 2, 10, 0.80},
      {"90% (2:20)", 2, 20, 0.90}, {"95% (2:40)", 2, 40, 0.95},
  };

  bench::header({"sparsity", "ideal", "1:N:M", "16:N:M", "32:N:M", "64:N:M",
                 "128:N:M", "vw_4", "vw_8", "vw_16", "vw_32"});
  for (const Point& p : points) {
    bench::cell(p.label);
    bench::cell(energy(prune_unstructured(w, p.sparsity), w));
    for (std::size_t v : {1u, 16u, 32u, 64u, 128u})
      bench::cell(energy(prune_vnm(w, {v, p.n, p.m}), w));
    for (std::size_t l : {4u, 8u, 16u, 32u})
      bench::cell(energy(prune_vector_wise(w, l, p.sparsity), w));
    bench::endrow();
  }

  std::printf(
      "\nExpected shape (paper): ideal > V:N:M (any V) > vw_8/vw_4 at every\n"
      "sparsity; V:N:M nearly flat in V (robust up to V=128); energy decays\n"
      "steeply with sparsity for all magnitude-based policies.\n");
  return 0;
}
