// Autoregressive decode bench: mixed prefill/decode batching through the
// serving engine, against the KV ring cache.
//
// Two timed phases over the same pruned causal encoder (measurement in
// serving::run_decode_bench, shared with `venomtool generate`'s engine
// path): a prefill-only phase — the prompts as bulk encode traffic,
// whose per-batch forward time is the latency a decode step would pay if
// it were serialized behind full prefill batches — and a mixed phase
// with every session generating concurrently, prefill chunks and
// single-token decode steps sharing one batch queue with decode ranked
// urgent. The acceptance bar is the scheduling claim itself: the mixed
// run's per-step decode p99 (queue + exec) must come in under the solo
// prefill batch latency, i.e. decode steps slot between prompt chunks
// instead of waiting them out. A correctness pass first asserts every
// session's generated columns are bit-identical to a direct prefill +
// decode_step loop — including ring wraparound, since prompt + new
// tokens overruns the window.
//
// Usage: bench_decode [sessions] [prompt_tokens] [new_tokens] [window]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "serving/bench_harness.hpp"
#include "transformer/config.hpp"

namespace {

using namespace venom;

transformer::ModelConfig bench_model() {
  // Same BERT-tiny-ish stack as bench_serving: SpMM-dominated, CI-sized.
  return transformer::ModelConfig{.name = "bert-tiny", .layers = 2,
                                  .hidden = 256, .heads = 4,
                                  .ffn_hidden = 512, .seq_len = 128};
}

}  // namespace

int main(int argc, char** argv) {
  serving::DecodeBenchSetup setup;
  setup.model = bench_model();
  setup.sessions = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  setup.prompt_tokens = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  setup.new_tokens = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 32;
  setup.window = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 48;

  char shape[128];
  std::snprintf(shape, sizeof(shape), "%s h%zuL%zu s%zu p%zu+%zu w%zu bt%zu",
                setup.model.name.c_str(), setup.model.hidden,
                setup.model.layers, setup.sessions, setup.prompt_tokens,
                setup.new_tokens, setup.window, setup.max_batch_tokens);
  bench::banner("Decode: mixed prefill/decode batching over the KV ring",
                shape);

  const serving::DecodeBenchReport r = serving::run_decode_bench(setup);
  if (!r.bit_identical) {
    std::fprintf(stderr,
                 "FAIL: engine generation differs from the direct "
                 "prefill + decode_step loop\n");
    return 1;
  }

  bench::header({"phase", "tok/s", "p50 ms", "p99 ms"});
  bench::cell("prefill");
  bench::cell(r.solo_prefill_tok_s, "%.0f");
  bench::cell(r.solo_prefill_batch_p50_ms, "%.3f");
  bench::cell("-");
  bench::endrow();
  bench::cell("decode");
  bench::cell(r.decode_tok_s, "%.0f");
  bench::cell(r.stats.decode_p50_ms, "%.3f");
  bench::cell(r.stats.decode_p99_ms, "%.3f");
  bench::endrow();
  std::printf("\nper-session outputs bit-identical: yes\n");
  std::printf("mixed phase: %zu prefill tokens + %zu decode steps in %zu "
              "batches (%.1f tokens avg)\n",
              r.stats.prefill_tokens, r.stats.decode_steps, r.stats.batches,
              r.stats.avg_batch_tokens);

  bench::merge_bench_json(
      "BENCH_kernels.json",
      {{"decode_prefill", shape, r.solo_prefill_tok_s, 1.0, "tok_per_s"},
       {"decode_tok_s", shape, r.decode_tok_s, 1.0, "tok_per_s"},
       {"decode_step_p99", shape, r.stats.decode_p99_ms, 1.0, "ms"},
       {"decode_solo_prefill_batch", shape, r.solo_prefill_batch_p50_ms,
        1.0, "ms"}});
  std::printf("merged 4 decode records into BENCH_kernels.json\n");

  // The scheduling acceptance bar: a decode step must not wait out a
  // full prefill batch. VENOM_DECODE_P99_FACTOR relaxes it for slow or
  // contended runners, mirroring the perf gate's tolerance envs.
  double factor = 1.0;
  if (const char* env = std::getenv("VENOM_DECODE_P99_FACTOR"))
    factor = std::strtod(env, nullptr);
  const double bar = r.solo_prefill_batch_p50_ms * factor;
  if (r.stats.decode_p99_ms >= bar) {
    std::fprintf(stderr,
                 "FAIL: decode p99 %.3f ms >= %.3f ms bar (solo prefill "
                 "batch p50 %.3f ms x %.2f)\n",
                 r.stats.decode_p99_ms, bar, r.solo_prefill_batch_p50_ms,
                 factor);
    return 1;
  }
  std::printf("decode p99 %.3f ms < solo prefill batch %.3f ms x %.2f: "
              "PASS\n",
              r.stats.decode_p99_ms, r.solo_prefill_batch_p50_ms, factor);
  return 0;
}
