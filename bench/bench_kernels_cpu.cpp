// Google-benchmark harness over the real CPU kernels: dense GEMM,
// Spatha V:N:M SpMM, 2:4 SpMM, CSR SpMM, CVSE SpMM.
//
// These are wall-clock measurements of this library's own kernels (not
// the GPU model): they demonstrate that the V:N:M format delivers real
// speedups proportional to sparsity on the CPU implementation too — the
// who-wins ordering of Fig. 13 holds for the executable code in this
// repository, not just for the analytical model.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "baselines/gemm.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ops/ops.hpp"
#include "pruning/policies.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/spmm.hpp"

namespace {

using namespace venom;

constexpr std::size_t kR = 256;
constexpr std::size_t kK = 512;
constexpr std::size_t kC = 128;

HalfMatrix weight() {
  Rng rng(1);
  return random_half_matrix(kR, kK, rng, 0.05f);
}

HalfMatrix activations() {
  Rng rng(2);
  return random_half_matrix(kK, kC, rng, 0.05f);
}

void BM_DenseGemm(benchmark::State& state) {
  const HalfMatrix a = weight();
  const HalfMatrix b = activations();
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetItemsProcessed(state.iterations());
  state.counters["flops"] = gemm_flops(kR, kK, kC);
}
BENCHMARK(BM_DenseGemm)->Unit(benchmark::kMillisecond);

void BM_SpathaVnm(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  const VnmConfig cfg{64, 2, m};
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(weight(), cfg);
  const HalfMatrix b = activations();
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel("64:2:" + std::to_string(m) + " (" +
                 std::to_string(int(cfg.sparsity() * 100)) + "% sparse)");
}
BENCHMARK(BM_SpathaVnm)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_SpathaVnmScalar(benchmark::State& state) {
  // The seed's element-at-a-time path, kept as the perf baseline for the
  // packed float-panel pipeline.
  const std::size_t m = std::size_t(state.range(0));
  const VnmConfig cfg{64, 2, m};
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(weight(), cfg);
  const HalfMatrix b = activations();
  // Dispatch would pick vnm-fast; pin the backend this bench measures.
  const ops::ScopedBackend forced("vnm-scalar");
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel("64:2:" + std::to_string(m) + " seed scalar path");
}
BENCHMARK(BM_SpathaVnmScalar)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SpathaVnmInt8(benchmark::State& state) {
  // Pre-quantized weight through the dispatch layer: measures the packed
  // int8 panel pipeline (int32 accumulate, scale epilogue), not the
  // one-time quantization cost.
  const std::size_t m = std::size_t(state.range(0));
  const VnmConfig cfg{64, 2, m};
  const auto a = std::make_shared<const quant::QuantizedVnmMatrix>(
      quant::QuantizedVnmMatrix::quantize(
          VnmMatrix::from_dense_magnitude(weight(), cfg)));
  const HalfMatrix b = activations();
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel("64:2:" + std::to_string(m) + " int8");
}
BENCHMARK(BM_SpathaVnmInt8)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SpathaVnmFp8(benchmark::State& state) {
  const std::size_t m = std::size_t(state.range(0));
  const VnmConfig cfg{64, 2, m};
  const auto a = std::make_shared<const quant::Fp8VnmMatrix>(
      quant::Fp8VnmMatrix::quantize(
          VnmMatrix::from_dense_magnitude(weight(), cfg), Fp8Format::kE4M3));
  const HalfMatrix b = activations();
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel("64:2:" + std::to_string(m) + " fp8-e4m3");
}
BENCHMARK(BM_SpathaVnmFp8)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Spmm24(benchmark::State& state) {
  const NmMatrix a = NmMatrix::from_dense_magnitude(weight(), {2, 4});
  const HalfMatrix b = activations();
  // Dispatch would pick the register-blocked nm backend; pin the 2:4
  // baseline this bench measures.
  const ops::ScopedBackend forced("spmm-24");
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel("2:4 (cuSparseLt-style)");
}
BENCHMARK(BM_Spmm24)->Unit(benchmark::kMillisecond);

void BM_SpmmCsr(benchmark::State& state) {
  const double sparsity = double(state.range(0)) / 100.0;
  const CsrMatrix a =
      CsrMatrix::from_dense(pruning::prune_unstructured(weight(), sparsity));
  const HalfMatrix b = activations();
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel(std::to_string(state.range(0)) + "% unstructured (Sputnik-style)");
}
BENCHMARK(BM_SpmmCsr)->Arg(50)->Arg(75)->Arg(90)->Arg(95)
    ->Unit(benchmark::kMillisecond);

void BM_SpmmCvse(benchmark::State& state) {
  const double sparsity = double(state.range(0)) / 100.0;
  const CvseMatrix a =
      CvseMatrix::from_dense_magnitude(weight(), 8, 1.0 - sparsity);
  const HalfMatrix b = activations();
  for (auto _ : state)
    benchmark::DoNotOptimize(ops::matmul(ops::MatmulArgs::make(a, b)));
  state.SetLabel(std::to_string(state.range(0)) + "% vw_8 (CLASP-style)");
}
BENCHMARK(BM_SpmmCvse)->Arg(50)->Arg(75)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_VnmCompression(benchmark::State& state) {
  const HalfMatrix w = weight();
  const VnmConfig cfg{64, 2, std::size_t(state.range(0))};
  for (auto _ : state)
    benchmark::DoNotOptimize(VnmMatrix::from_dense_magnitude(w, cfg));
  state.SetLabel("compress 64:2:" + std::to_string(state.range(0)));
}
BENCHMARK(BM_VnmCompression)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

using venom::bench::seconds_per_call;

/// Measures the packed float-panel pipeline against the seed scalar path
/// on the Table-1 bench shape and writes BENCH_kernels.json so the perf
/// trajectory is tracked across PRs.
void write_speedup_json() {
  const HalfMatrix b = activations();
  std::vector<venom::bench::JsonRecord> records;
  std::printf("SpMM fast-vs-seed (R%zux K%zu x C%zu):\n", kR, kK, kC);
  for (const VnmConfig cfg : {VnmConfig{64, 2, 8}, VnmConfig{128, 2, 16}}) {
    const VnmMatrix a = VnmMatrix::from_dense_magnitude(weight(), cfg);
    const double flops = spatha::spmm_flops(a, kC);
    const ops::MatmulArgs margs = ops::MatmulArgs::make(a, b);
    const double fast_s = seconds_per_call(
        [&] { benchmark::DoNotOptimize(ops::matmul(margs)); });
    const double seed_s = seconds_per_call([&] {
      const ops::ScopedBackend forced("vnm-scalar");
      benchmark::DoNotOptimize(ops::matmul(margs));
    });
    const std::string shape = "R" + std::to_string(kR) + "xK" +
                              std::to_string(kK) + "xC" + std::to_string(kC) +
                              " " + std::to_string(cfg.v) + ":" +
                              std::to_string(cfg.n) + ":" +
                              std::to_string(cfg.m);
    records.push_back({"spmm_vnm", shape, flops / fast_s * 1e-9,
                       seed_s / fast_s});
    records.push_back({"spmm_vnm_scalar", shape, flops / seed_s * 1e-9, 1.0});
    std::printf("  %-24s %7.2f GFLOP/s  (seed %5.2f GFLOP/s, speedup %.2fx)\n",
                shape.c_str(), flops / fast_s * 1e-9, flops / seed_s * 1e-9,
                seed_s / fast_s);

    // Reduced-precision rows on the same shape: pre-quantized weights
    // through the dispatch layer, ratios against the same seed run so
    // they compare directly with the fp16 rows above.
    const auto qa = std::make_shared<const quant::QuantizedVnmMatrix>(
        quant::QuantizedVnmMatrix::quantize(a));
    const ops::MatmulArgs qargs = ops::MatmulArgs::make(qa, b);
    const double i8_s = seconds_per_call(
        [&] { benchmark::DoNotOptimize(ops::matmul(qargs)); });
    records.push_back({"spmm_vnm_i8", shape, flops / i8_s * 1e-9,
                       seed_s / i8_s});
    std::printf("  %-24s %7.2f GFLOP/s  (%.2fx over fp16 fast)\n",
                (shape + " int8").c_str(), flops / i8_s * 1e-9, fast_s / i8_s);

    const auto fa = std::make_shared<const quant::Fp8VnmMatrix>(
        quant::Fp8VnmMatrix::quantize(a, Fp8Format::kE4M3));
    const ops::MatmulArgs fargs = ops::MatmulArgs::make(fa, b);
    const double f8_s = seconds_per_call(
        [&] { benchmark::DoNotOptimize(ops::matmul(fargs)); });
    records.push_back({"spmm_vnm_fp8", shape, flops / f8_s * 1e-9,
                       seed_s / f8_s});
    std::printf("  %-24s %7.2f GFLOP/s  (%.2fx over fp16 fast)\n",
                (shape + " fp8").c_str(), flops / f8_s * 1e-9, fast_s / f8_s);
  }
  // Merge (not overwrite) so bench_autotune's tuned-vs-heuristic records
  // survive a re-run of this harness and vice versa.
  venom::bench::merge_bench_json("BENCH_kernels.json", records);
  std::printf("wrote BENCH_kernels.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  // The fast-vs-seed measurement (and its JSON overwrite) runs only on a
  // bare invocation; flagged runs (--benchmark_filter, --benchmark_list_tests,
  // --help, ...) go straight to google-benchmark.
  if (argc == 1) write_speedup_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
