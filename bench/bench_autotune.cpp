// Tuned-vs-heuristic throughput on the Table-1 bench shape.
//
// Runs the empirical autotuner (gpumodel::autotune_measured) on the same
// problems bench_kernels_cpu measures, reports tuned and heuristic
// GFLOP/s, and merges both into BENCH_kernels.json so the tuning gain is
// tracked across PRs alongside the fast-vs-seed trajectory.
//
// Doubles as the CI parity gate: the tuner bit-compares the winning
// configuration's output against spmm_vnm_reference (and this bench
// additionally checks the heuristic config), exiting non-zero on any
// mismatch.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "gpumodel/autotune.hpp"
#include "ops/ops.hpp"
#include "quant/quantized_vnm.hpp"
#include "spatha/spmm.hpp"

namespace {

using namespace venom;

constexpr std::size_t kR = 256;
constexpr std::size_t kK = 512;
constexpr std::size_t kC = 128;

bool bit_identical(const FloatMatrix& a, const FloatMatrix& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main() {
  bench::banner("Empirical autotuning — tuned vs heuristic dispatch",
                "spmm_vnm on R256 x K512 x C128, features: " +
                    cpu_feature_string());

  Rng rng_w(1), rng_b(2);
  const HalfMatrix w = random_half_matrix(kR, kK, rng_w, 0.05f);
  const HalfMatrix b = random_half_matrix(kK, kC, rng_b, 0.05f);

  std::vector<bench::JsonRecord> records;
  bench::header({"V:N:M", "heuristic", "tuned", "gain%", "parity"});

  int failures = 0;
  for (const VnmConfig fmt : {VnmConfig{64, 2, 8}, VnmConfig{128, 2, 16}}) {
    const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);
    gpumodel::MeasureOptions opts;
    opts.verify = true;  // bit-compares the winner against the reference
    gpumodel::MeasuredResult tuned;
    try {
      tuned = gpumodel::autotune_measured(a, b, {}, opts);
    } catch (const Error& e) {
      std::fprintf(stderr, "autotune parity failure: %s\n", e.what());
      return 1;
    }

    // The heuristic config must agree with the reference bit-for-bit
    // too (explicit config through the ops dispatcher).
    ops::MatmulArgs margs = ops::MatmulArgs::make(a, b);
    margs.config = &tuned.heuristic.config;
    const bool parity =
        bit_identical(ops::matmul(margs), spatha::spmm_vnm_reference(a, b));
    if (!parity) ++failures;
    // (best >= heuristic holds by construction — the heuristic is in the
    // measured set — so there is no slower-than-heuristic gate here.)

    const std::string vnm = std::to_string(fmt.v) + ":" +
                            std::to_string(fmt.n) + ":" +
                            std::to_string(fmt.m);
    bench::cell(vnm);
    bench::cell(tuned.heuristic.gflops);
    bench::cell(tuned.best.gflops);
    bench::cell((tuned.best.gflops / tuned.heuristic.gflops - 1.0) * 100.0,
                "%.1f");
    bench::cell(parity ? "ok" : "FAIL");
    bench::endrow();
    std::printf("    tuned:     %s\n", tuned.best.config.describe().c_str());
    std::printf("    heuristic: %s\n",
                tuned.heuristic.config.describe().c_str());

    // speedup_vs_seed keeps the BENCH_kernels.json convention: wall-clock
    // of the retained seed scalar path over this kernel's.
    const double seed_s = bench::seconds_per_call(
        [&] {
          const ops::ScopedBackend forced("vnm-scalar");
          volatile float sink =
              ops::matmul(ops::MatmulArgs::make(a, b)).flat()[0];
          (void)sink;
        },
        0.05);
    const std::string shape = "R" + std::to_string(kR) + "xK" +
                              std::to_string(kK) + "xC" + std::to_string(kC) +
                              " " + vnm;
    records.push_back({"spmm_vnm_tuned", shape, tuned.best.gflops,
                       seed_s / tuned.best.seconds});
    records.push_back({"spmm_vnm_heuristic", shape, tuned.heuristic.gflops,
                       seed_s / tuned.heuristic.seconds});
  }

  // The int8 datapath, tuned the same way: autotune_measured on
  // Dtype::kI8 measures quant::spmm_vnm_i8, seeds from the int8
  // heuristic, and bit-compares the winner against spmm_vnm_i8_scalar
  // (integer accumulation — the fp16 reference would be the wrong
  // oracle). The explicit heuristic-config parity check mirrors the fp16
  // rows, through the vnm-int8 dispatch path.
  {
    const VnmConfig fmt{64, 2, 8};
    const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);
    const quant::QuantizedVnmMatrix qa = quant::QuantizedVnmMatrix::quantize(a);
    gpumodel::MeasureOptions opts;
    opts.verify = true;
    opts.dtype = ops::Dtype::kI8;
    gpumodel::MeasuredResult tuned;
    try {
      tuned = gpumodel::autotune_measured(a, b, {}, opts);
    } catch (const Error& e) {
      std::fprintf(stderr, "int8 autotune parity failure: %s\n", e.what());
      return 1;
    }

    ops::MatmulArgs margs = ops::MatmulArgs::make(qa, b);
    margs.config = &tuned.heuristic.config;
    const bool parity = bit_identical(
        ops::matmul(margs),
        quant::spmm_vnm_i8_scalar(qa, b, tuned.heuristic.config.column_loc));
    if (!parity) ++failures;

    bench::cell("64:2:8 i8");
    bench::cell(tuned.heuristic.gflops);
    bench::cell(tuned.best.gflops);
    bench::cell((tuned.best.gflops / tuned.heuristic.gflops - 1.0) * 100.0,
                "%.1f");
    bench::cell(parity ? "ok" : "FAIL");
    bench::endrow();
    std::printf("    tuned:     %s\n", tuned.best.config.describe().c_str());
    std::printf("    heuristic: %s\n",
                tuned.heuristic.config.describe().c_str());

    // The retained seed path for the int8 rows is the int8 scalar oracle
    // itself — the datapath's own slow-but-sure baseline.
    const double seed_s = bench::seconds_per_call(
        [&] {
          volatile float sink =
              quant::spmm_vnm_i8_scalar(qa, b,
                                        tuned.best.config.column_loc)
                  .flat()[0];
          (void)sink;
        },
        0.05);
    const std::string shape = "R" + std::to_string(kR) + "xK" +
                              std::to_string(kK) + "xC" + std::to_string(kC) +
                              " 64:2:8";
    records.push_back({"spmm_vnm_i8_tuned", shape, tuned.best.gflops,
                       seed_s / tuned.best.seconds});
    records.push_back({"spmm_vnm_i8_heuristic", shape,
                       tuned.heuristic.gflops,
                       seed_s / tuned.heuristic.seconds});
  }

  bench::merge_bench_json("BENCH_kernels.json", records);
  std::printf("\nmerged %zu records into BENCH_kernels.json\n",
              records.size());
  return failures == 0 ? 0 : 1;
}
