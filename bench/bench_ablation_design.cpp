// Ablation benches for design choices DESIGN.md calls out beyond the
// paper's own figures:
//   (a) async-copy pipeline depth (batchSize) — Section 4.1's tunable;
//   (b) thread-block K-tile size (BSk);
//   (c) m-combinatorial vs pair-wise (greedy) second-order selection —
//       quality and cost tradeoff of Section 6.1's two strategies.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "gpumodel/autotune.hpp"
#include "gpumodel/kernel_models.hpp"
#include "pruning/obs.hpp"
#include "pruning/quadratic.hpp"

using namespace venom;
using namespace venom::gpumodel;
using namespace venom::pruning;

namespace {

void pipeline_depth_ablation(const DeviceSpec& dev) {
  bench::banner("Ablation (a) — memory pipeline depth (batchSize)",
                "modeled 1024 x 12288 x 4096, 128:2:100 (overhead-sensitive)");
  const GemmShape g{1024, 12288, 4096};
  const VnmConfig fmt{128, 2, 100};
  bench::header({"batchSize", "time(us)", "speedup"});
  double t1 = 0.0;
  for (std::size_t depth : {1u, 2u, 3u, 4u, 6u, 8u}) {
    auto cfg = spatha::select_config(fmt, g.r, g.k, g.c);
    cfg.batch_size = depth;
    const double t = spatha_spmm(dev, g, fmt, cfg).total();
    if (depth == 1) t1 = t;
    bench::cell(double(depth), "%.0f");
    bench::cell(t * 1e6, "%.2f");
    bench::cell(t1 / t, "%.3f");
    bench::endrow();
  }
}

void block_k_ablation(const DeviceSpec& dev) {
  bench::banner("Ablation (b) — thread-block K tile (BSk)",
                "modeled 1024 x 12288 x 4096, 128:2:20");
  const GemmShape g{1024, 12288, 4096};
  const VnmConfig fmt{128, 2, 20};
  bench::header({"BSk", "time(us)"});
  for (std::size_t bk : {160u, 640u, 2560u, 10240u}) {
    auto cfg = spatha::select_config(fmt, g.r, g.k, g.c);
    cfg.block_k = bk;
    const double t = spatha_spmm(dev, g, fmt, cfg).total();
    bench::cell(double(bk), "%.0f");
    bench::cell(t * 1e6, "%.2f");
    bench::endrow();
  }
}

void selection_mode_ablation() {
  bench::banner("Ablation (c) — m-combinatorial vs pair-wise OBS selection",
                "quadratic model, 2:M groups; quality = normalized dLoss");
  bench::header({"M", "comb dLoss", "pair dLoss", "comb ms", "pair ms"});
  Rng rng(17);
  for (const std::size_t m : {4u, 8u, 12u, 16u}) {
    QuadraticModel model = QuadraticModel::synthesize(32, 4 * m, m, rng, 0.8);
    const GroupFisher fisher = model.fisher();
    const double norm = model.normalizer();

    const auto run = [&](SelectionMode mode, double* ms) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = obs_prune_nm(model.optimum(), fisher, {2, m}, mode);
      *ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
      return model.loss(r.weights) / norm;
    };
    double ms_comb = 0.0, ms_pair = 0.0;
    const double dl_comb = run(SelectionMode::kCombinatorial, &ms_comb);
    const double dl_pair = run(SelectionMode::kPairwise, &ms_pair);
    bench::cell(double(m), "%.0f");
    bench::cell(dl_comb, "%.4f");
    bench::cell(dl_pair, "%.4f");
    bench::cell(ms_comb, "%.1f");
    bench::cell(ms_pair, "%.1f");
    bench::endrow();
  }
  std::printf(
      "\nExpected: combinatorial quality >= pair-wise everywhere; its cost\n"
      "explodes with M — the reason the paper selects dynamically.\n");
}

void autotune_ablation(const DeviceSpec& dev) {
  bench::banner("Ablation (d) — heuristic vs model-driven autotuned config",
                "Spatha kernel configuration selection (the paper's "
                "template tuning table)");
  bench::header({"shape", "V:2:M", "heuristic", "autotuned", "gain%"});
  struct Case {
    GemmShape g;
    std::size_t v, m;
  };
  const Case cases[] = {
      {{768, 768, 512}, 64, 8},      {{1024, 4096, 4096}, 128, 10},
      {{1024, 12200, 4096}, 128, 100}, {{4096, 1024, 8192}, 64, 8},
      {{3072, 768, 256}, 64, 16},
  };
  for (const Case& c : cases) {
    const VnmConfig fmt{c.v, 2, c.m};
    const GemmShape g{c.g.r, c.g.k - c.g.k % c.m, c.g.c};
    const double heur = spatha_spmm(dev, g, fmt).total();
    const double tuned = autotune(dev, g, fmt).total_s();
    const std::string shape = std::to_string(g.r) + "x" +
                              std::to_string(g.k) + "x" +
                              std::to_string(g.c);
    bench::cell(shape);
    bench::cell(std::to_string(c.v) + ":2:" + std::to_string(c.m));
    bench::cell(heur * 1e6, "%.2f");
    bench::cell(tuned * 1e6, "%.2f");
    bench::cell(100.0 * (heur - tuned) / heur, "%.1f");
    bench::endrow();
  }
  std::printf("\n(times in us; gain is how much the exhaustive search\n"
              "improves on the built-in heuristic)\n");
}

}  // namespace

int main() {
  const DeviceSpec& dev = rtx3090();
  pipeline_depth_ablation(dev);
  block_k_ablation(dev);
  autotune_ablation(dev);
  selection_mode_ablation();
  return 0;
}
