// Shared table-printing helpers for the figure benches, plus the
// machine-readable perf record emitted by bench_kernels_cpu so the kernel
// throughput trajectory is tracked across PRs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace venom::bench {

/// One measured kernel configuration. `speedup_vs_seed` is wall-clock of
/// the seed scalar path divided by this kernel's wall-clock on the same
/// problem (1.0 when the kernel IS the seed path or has no baseline).
struct JsonRecord {
  std::string name;
  std::string shape;
  double gflops = 0.0;
  double speedup_vs_seed = 1.0;
};

/// Writes records as a JSON array to `path` (e.g. BENCH_kernels.json).
inline void write_bench_json(const std::string& path,
                             const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"shape\": \"%s\", "
                 "\"gflops\": %.3f, \"speedup_vs_seed\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.gflops,
                 r.speedup_vs_seed, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

/// Prints a banner naming the paper artefact being regenerated.
inline void banner(const std::string& artefact, const std::string& detail) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", artefact.c_str(), detail.c_str());
  std::printf("================================================================\n");
}

/// Prints a header row of right-aligned 10-char columns.
inline void header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%12s", "------");
  std::printf("\n");
}

inline void cell(const std::string& s) { std::printf("%12s", s.c_str()); }
inline void cell(double v, const char* fmt = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  std::printf("%12s", buf);
}
inline void endrow() { std::printf("\n"); }

}  // namespace venom::bench
