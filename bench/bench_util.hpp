// Shared table-printing helpers for the figure benches, plus the
// machine-readable perf record emitted by bench_kernels_cpu so the kernel
// throughput trajectory is tracked across PRs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/timing.hpp"

namespace venom::bench {

/// One measured configuration. `speedup_vs_seed` is wall-clock of the
/// baseline path divided by this one's wall-clock on the same problem
/// (1.0 when the record IS the baseline or has none). `unit` names what
/// `gflops` carries — "gflops" for kernels; serving records reuse the
/// field for "req_per_s", "tok_per_s", or "ms" (the perf-regression gate
/// reads it to pick the regression direction: for "ms" higher is worse).
struct JsonRecord {
  std::string name;
  std::string shape;
  double gflops = 0.0;
  double speedup_vs_seed = 1.0;
  std::string unit = "gflops";
};

/// Writes records as a JSON array to `path` (e.g. BENCH_kernels.json).
inline void write_bench_json(const std::string& path,
                             const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"shape\": \"%s\", "
                 "\"gflops\": %.3f, \"speedup_vs_seed\": %.3f, "
                 "\"unit\": \"%s\"}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.gflops,
                 r.speedup_vs_seed, r.unit.c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

/// The shared timing loop (common/timing.hpp) with the bench default of
/// one warmup call.
template <typename Fn>
double seconds_per_call(Fn&& fn, double min_sample_s = 0.2) {
  return venom::seconds_per_call(static_cast<Fn&&>(fn), 1, min_sample_s);
}

/// Parses one record line of write_bench_json's own output back into a
/// JsonRecord. Returns false for lines that are not records (brackets,
/// foreign content).
inline bool parse_bench_line(const std::string& line, JsonRecord& r) {
  const auto str_field = [&line](const char* key) -> std::string {
    const std::string tag = std::string("\"") + key + "\": \"";
    const std::size_t p = line.find(tag);
    if (p == std::string::npos) return {};
    const std::size_t start = p + tag.size();
    const std::size_t q = line.find('"', start);
    if (q == std::string::npos) return {};
    return line.substr(start, q - start);
  };
  const auto num_field = [&line](const char* key, double fallback) {
    const std::string tag = std::string("\"") + key + "\": ";
    const std::size_t p = line.find(tag);
    if (p == std::string::npos) return fallback;
    return std::strtod(line.c_str() + p + tag.size(), nullptr);
  };
  r.name = str_field("name");
  r.shape = str_field("shape");
  if (r.name.empty() || r.shape.empty()) return false;
  r.gflops = num_field("gflops", 0.0);
  r.speedup_vs_seed = num_field("speedup_vs_seed", 1.0);
  const std::string unit = str_field("unit");
  r.unit = unit.empty() ? "gflops" : unit;  // records from older PRs
  return true;
}

/// Merges records into the JSON file: existing records with a different
/// (name, shape) are preserved, matching ones are replaced. Lets several
/// bench executables contribute to one BENCH_kernels.json.
inline void merge_bench_json(const std::string& path,
                             const std::vector<JsonRecord>& records) {
  std::vector<JsonRecord> merged;
  std::ifstream in(path);
  std::string line;
  while (in.good() && std::getline(in, line)) {
    JsonRecord old;
    if (!parse_bench_line(line, old)) continue;
    bool replaced = false;
    for (const JsonRecord& r : records)
      if (r.name == old.name && r.shape == old.shape) replaced = true;
    if (!replaced) merged.push_back(std::move(old));
  }
  merged.insert(merged.end(), records.begin(), records.end());
  write_bench_json(path, merged);
}

/// Prints a banner naming the paper artefact being regenerated.
inline void banner(const std::string& artefact, const std::string& detail) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", artefact.c_str(), detail.c_str());
  std::printf("================================================================\n");
}

/// Prints a header row of right-aligned 10-char columns.
inline void header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%12s", "------");
  std::printf("\n");
}

inline void cell(const std::string& s) { std::printf("%12s", s.c_str()); }
inline void cell(double v, const char* fmt = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  std::printf("%12s", buf);
}
inline void endrow() { std::printf("\n"); }

}  // namespace venom::bench
