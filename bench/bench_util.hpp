// Shared table-printing helpers for the figure benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace venom::bench {

/// Prints a banner naming the paper artefact being regenerated.
inline void banner(const std::string& artefact, const std::string& detail) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", artefact.c_str(), detail.c_str());
  std::printf("================================================================\n");
}

/// Prints a header row of right-aligned 10-char columns.
inline void header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%12s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%12s", "------");
  std::printf("\n");
}

inline void cell(const std::string& s) { std::printf("%12s", s.c_str()); }
inline void cell(double v, const char* fmt = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  std::printf("%12s", buf);
}
inline void endrow() { std::printf("\n"); }

}  // namespace venom::bench
