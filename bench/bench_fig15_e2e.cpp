// Regenerates Fig. 15: end-to-end LLM inference latency with Spatha.
// BERT-large (bs=32), GPT2-large (bs=8), GPT-3 single encoder (bs=1);
// dense vs {64,128}:2:{8,16,32}. Latency broken into GEMMs, attention
// matmuls, softmax, and others, as in the paper's stacked bars.
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "transformer/latency_model.hpp"

using namespace venom;
using namespace venom::gpumodel;
using namespace venom::transformer;

namespace {

void panel(const DeviceSpec& dev, const ModelConfig& cfg, std::size_t batch,
           std::size_t v, std::size_t layer_count) {
  std::printf("\n%s, bs=%zu  (%zu layer%s, V=%zu)\n", cfg.name.c_str(), batch,
              layer_count == 0 ? cfg.layers : layer_count,
              (layer_count == 0 ? cfg.layers : layer_count) == 1 ? "" : "s",
              v);
  bench::header({"sparsity", "GEMMs", "matmul", "softmax", "others", "total",
                 "speedup", "gemm-red"});
  const ModeledLatency dense =
      model_encoder_latency(dev, cfg, batch, std::nullopt, layer_count);
  const auto row = [&](const char* label, const ModeledLatency& lat) {
    bench::cell(label);
    bench::cell(lat.gemm_s * 1e3, "%.1f");
    bench::cell(lat.attn_matmul_s * 1e3, "%.1f");
    bench::cell(lat.softmax_s * 1e3, "%.1f");
    bench::cell(lat.other_s * 1e3, "%.1f");
    bench::cell(lat.total() * 1e3, "%.1f");
    bench::cell(dense.total() / lat.total());
    bench::cell(dense.gemm_s / lat.gemm_s);
    bench::endrow();
  };
  row("dense", dense);
  for (std::size_t m : {8u, 16u, 32u}) {
    const std::string label =
        std::to_string(v) + ":2:" + std::to_string(m);
    row(label.c_str(),
        model_encoder_latency(dev, cfg, batch, VnmConfig{v, 2, m},
                              layer_count));
  }
}

}  // namespace

int main() {
  bench::banner("Figure 15 — end-to-end LLM inference latency (ms)",
                "modeled RTX 3090; GPT-3 measured as a single encoder "
                "(as in the paper)");
  const DeviceSpec& dev = rtx3090();
  // Top row of Fig. 15: V = 64; bottom row: V = 128 (BERT-large).
  for (std::size_t v : {64u, 128u}) {
    panel(dev, bert_large(), 32, v, 0);
    panel(dev, gpt2_large(), 8, v, 0);
    panel(dev, gpt3_175b(), 1, v, 1);  // single encoder fits one GPU
  }
  std::printf(
      "\nExpected shape (paper): GEMM share of latency grows from BERT to\n"
      "GPT-3 (~80%%); GEMM time reduction reaches ~10-11x at 2:32; GPT-3\n"
      "encoder end-to-end improves up to ~3.2x.\n");
  return 0;
}
