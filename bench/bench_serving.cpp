// Serving throughput bench: dynamic batching vs a sequential
// one-request-at-a-time loop over the same pruned encoder.
//
// The sequential baseline is what the repo could do before the serving
// subsystem existed: pop a request, run Encoder::forward, repeat. The
// engine coalesces the same request trace into token-packed batches, so
// every sparse weight is streamed once per batch instead of once per
// request (and the register-blocked kernel runs at full strip width
// instead of a few ragged columns). The measurement itself lives in
// serving::run_serving_comparison — shared with `venomtool serve-bench`
// so the two surfaces can never drift — and asserts per-request outputs
// are bit-identical; the interesting numbers are requests/s, tokens/s,
// and the p50/p99 submit-to-completion latency, all merged into
// BENCH_kernels.json for the CI perf-regression gate.
//
// Usage: bench_serving [requests] [tokens_per_request] [max_batch_tokens]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "serving/bench_harness.hpp"
#include "transformer/config.hpp"

namespace {

using namespace venom;

transformer::ModelConfig bench_model() {
  // A BERT-tiny-ish stack: big enough that the SpMMs dominate, small
  // enough for a CI smoke job.
  return transformer::ModelConfig{.name = "bert-tiny", .layers = 2,
                                  .hidden = 256, .heads = 4,
                                  .ffn_hidden = 512, .seq_len = 128};
}

}  // namespace

int main(int argc, char** argv) {
  serving::BenchSetup setup;
  setup.model = bench_model();
  setup.requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  setup.tokens = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  setup.max_batch_tokens =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 256;
  setup.max_batch_requests = setup.requests;

  char shape[128];
  std::snprintf(shape, sizeof(shape), "%s h%zuL%zu reqs%zux%zutok bt%zu",
                setup.model.name.c_str(), setup.model.hidden,
                setup.model.layers, setup.requests, setup.tokens,
                setup.max_batch_tokens);
  bench::banner("Serving: dynamic batching vs sequential loop", shape);

  const serving::BenchComparison r = serving::run_serving_comparison(setup);
  if (!r.bit_identical) {
    std::fprintf(stderr,
                 "FAIL: batched outputs differ from the sequential "
                 "forward\n");
    return 1;
  }

  bench::header({"path", "req/s", "tok/s", "p50 ms", "p99 ms", "speedup"});
  bench::cell("sequential");
  bench::cell(r.sequential_rps(), "%.1f");
  bench::cell(r.sequential_rps() * double(setup.tokens), "%.0f");
  bench::cell(r.sequential_p50_ms, "%.3f");
  bench::cell(r.sequential_p99_ms, "%.3f");
  bench::cell(1.0);
  bench::endrow();
  bench::cell("batched");
  bench::cell(r.batched_rps(), "%.1f");
  bench::cell(r.batched_rps() * double(setup.tokens), "%.0f");
  bench::cell(r.stats.p50_ms, "%.3f");
  bench::cell(r.stats.p99_ms, "%.3f");
  bench::cell(r.speedup());
  bench::endrow();
  std::printf("\nper-request outputs bit-identical: yes\n");
  std::printf("avg batch occupancy: %.1f tokens (%zu batches, plan cache "
              "%zu hits / %zu misses)\n",
              r.stats.avg_batch_tokens, r.stats.batches,
              r.stats.plan_cache_hits, r.stats.plan_cache_misses);

  bench::merge_bench_json(
      "BENCH_kernels.json",
      {{"serving_sequential", shape, r.sequential_rps(), 1.0, "req_per_s"},
       {"serving_batched", shape, r.batched_rps(), r.speedup(),
        "req_per_s"},
       {"serving_p50", shape, r.stats.p50_ms, 1.0, "ms"},
       {"serving_p99", shape, r.stats.p99_ms, 1.0, "ms"}});
  std::printf("merged 4 serving records into BENCH_kernels.json\n");

  // The acceptance bar for the serving engine: batching must buy at
  // least 3x over the one-request-at-a-time loop. Exit nonzero so the CI
  // bench smoke job fails loudly if batching stops paying.
  // VENOM_SERVING_SPEEDUP_BAR overrides it (e.g. for unusually slow or
  // contended runners), mirroring the perf gate's tolerance envs.
  double bar = 3.0;
  if (const char* env = std::getenv("VENOM_SERVING_SPEEDUP_BAR"))
    bar = std::strtod(env, nullptr);
  if (r.speedup() < bar) {
    std::fprintf(stderr, "FAIL: batched speedup %.2fx < %.1fx bar\n",
                 r.speedup(), bar);
    return 1;
  }
  std::printf("batched speedup %.2fx >= %.1fx bar: PASS\n", r.speedup(),
              bar);
  return 0;
}
