// Scaled-serving load bench: an EngineGroup of N replicas under a 2x
// Poisson overload burst.
//
// The question this answers is not "how fast is a batch" (bench_serving)
// but "what happens when more work arrives than the group can serve".
// The correct production answer — the one ROADMAP item 2 asks for — is:
// admitted requests keep a bounded p99 because the admission controller
// sheds the excess with explicit AdmissionError rejections, instead of
// an unbounded queue dragging every request's latency to infinity. The
// measurement lives in serving::run_serving_load — shared with
// `venomtool route-bench` so the CLI probe and the CI gate can never
// drift — which also bit-checks every admitted output against a direct
// Encoder::forward on an independently built reference encoder.
//
// Goodput (admitted completions/s) and admitted-p99 are merged into
// BENCH_kernels.json; the baseline holds presence-gated sentinel rows
// for them, so the perf gate fails if the load bench stops reporting.
//
// Usage: bench_serving_load [replicas] [requests] [overload] [queue_tokens]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "serving/bench_harness.hpp"
#include "transformer/config.hpp"

namespace {

using namespace venom;

transformer::ModelConfig bench_model() {
  // Same BERT-tiny-ish stack as bench_serving: SpMM-dominated, CI-sized.
  return transformer::ModelConfig{.name = "bert-tiny", .layers = 2,
                                  .hidden = 256, .heads = 4,
                                  .ffn_hidden = 512, .seq_len = 128};
}

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) return std::strtod(env, nullptr);
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  serving::LoadSetup setup;
  setup.model = bench_model();
  setup.replicas = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  setup.requests = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 192;
  setup.overload = argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;
  setup.max_queued_tokens =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 512;

  char shape[128];
  std::snprintf(shape, sizeof(shape),
                "%s h%zuL%zu r%zu reqs%zu tok%zu-%zu ov%.1f qb%zu",
                setup.model.name.c_str(), setup.model.hidden,
                setup.model.layers, setup.replicas, setup.requests,
                setup.min_tokens, setup.max_tokens, setup.overload,
                setup.max_queued_tokens);
  bench::banner("Scaled serving: EngineGroup under Poisson overload",
                shape);

  // Watchdog: the load bench's worst failure mode is a future that never
  // resolves (a worker wedged across shutdown, a dropped promise). Turn
  // a hang into a loud nonzero exit instead of a stuck CI job.
  std::atomic<bool> finished{false};
  const double timeout_s = env_double("VENOM_LOAD_TIMEOUT_S", 300.0);
  std::thread([&finished, timeout_s] {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s));
    while (std::chrono::steady_clock::now() < deadline) {
      if (finished.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!finished.load()) {
      std::fprintf(stderr, "FAIL: load bench hung past %.0fs watchdog\n",
                   timeout_s);
      std::_Exit(2);
    }
  }).detach();

  const serving::LoadReport r = serving::run_serving_load(setup);
  finished.store(true);

  if (!r.bit_identical) {
    std::fprintf(stderr,
                 "FAIL: a routed output differs from the direct forward\n");
    return 1;
  }
  if (r.failed != 0) {
    std::fprintf(stderr, "FAIL: %zu admitted requests failed\n", r.failed);
    return 1;
  }

  bench::header({"metric", "value"});
  bench::cell("capacity");
  bench::cell(r.capacity_rps, "%.1f req/s");
  bench::endrow();
  bench::cell("offered");
  bench::cell(r.offered_rps, "%.1f req/s");
  bench::endrow();
  bench::cell("goodput");
  bench::cell(r.goodput_rps, "%.1f req/s");
  bench::endrow();
  bench::cell("admitted");
  bench::cell(double(r.admitted), "%.0f");
  bench::endrow();
  bench::cell("shed");
  bench::cell(double(r.rejected_queue + r.rejected_rate), "%.0f");
  bench::endrow();
  bench::cell("p50");
  bench::cell(r.p50_ms, "%.3f ms");
  bench::endrow();
  bench::cell("p99");
  bench::cell(r.p99_ms, "%.3f ms");
  bench::endrow();
  std::printf("\nadmitted outputs bit-identical to direct forward: yes\n");
  std::printf("replica batches:");
  for (const auto& s : r.stats.replicas)
    std::printf(" %zu", s.batches);
  std::printf("\n");

  bench::merge_bench_json(
      "BENCH_kernels.json",
      {{"serving_load_goodput", shape, r.goodput_rps, 1.0, "req_per_s"},
       {"serving_load_p99", shape, r.p99_ms, 1.0, "ms"}});
  std::printf("merged 2 serving-load records into BENCH_kernels.json\n");

  // Acceptance bars, env-overridable like the perf gate's tolerances:
  //   * the admitted requests' p99 must stay bounded — the admission
  //     queue bound caps how long an admitted request can wait, so a
  //     blown bar means shedding stopped protecting latency;
  //   * a 2x overload must actually shed — zero rejections means the
  //     burst never exceeded capacity and the run proved nothing.
  // The default bar is ~4x the queue-bound-implied delay on this bench's
  // reference machine, leaving headroom for slower CI runners (whose
  // queue delay scales inversely with their token throughput).
  const double p99_bar = env_double("VENOM_LOAD_P99_BAR_MS", 1000.0);
  if (r.p99_ms > p99_bar) {
    std::fprintf(stderr, "FAIL: admitted p99 %.1f ms > %.0f ms bar\n",
                 r.p99_ms, p99_bar);
    return 1;
  }
  const double require_shed = env_double("VENOM_LOAD_REQUIRE_SHED", 1.0);
  if (require_shed != 0.0 && setup.overload >= 1.5 &&
      r.rejected_queue + r.rejected_rate == 0) {
    std::fprintf(stderr,
                 "FAIL: %.1fx overload shed nothing — offered load never "
                 "exceeded capacity\n",
                 setup.overload);
    return 1;
  }
  std::printf("admitted p99 %.1f ms <= %.0f ms bar, %zu requests shed "
              "with AdmissionError: PASS\n",
              r.p99_ms, p99_bar, r.rejected_queue + r.rejected_rate);
  return 0;
}
