// Regenerates Table 2 (substituted): second-order pruning quality of
// 1:N:M, 64:N:M, 128:N:M and vw_8 at 75% (2:8) and 87.5% (2:16).
//
// Substitution (DESIGN.md #2): instead of SQuAD F1 after fine-tuning BERT
// we prune a synthetic quadratic model whose block Hessian is known
// exactly. OBS saliency provably equals the loss increase on quadratic
// objectives, so the relative ordering of the formats — the claim Table 2
// makes — transfers. We report:
//   loss increase (normalized by the all-zero loss), lower is better, and
//   "score retention" = 1 - normalized loss, the analogue of F1 recovery.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "pruning/finetune.hpp"
#include "pruning/obs.hpp"
#include "pruning/quadratic.hpp"
#include "pruning/scheduler.hpp"

using namespace venom;
using namespace venom::pruning;

int main() {
  bench::banner(
      "Table 2 (substituted) — second-order pruning quality by format",
      "normalized loss increase on a known-Hessian quadratic model; the\n"
      "paper reports SQuAD F1 (dense F1 = 88.43) — ordering transfers");

  Rng rng(7);
  // 128 rows so V=128 divides; M = 8 / 16 as in the paper. The optimum
  // carries outlier columns (trained-transformer structure, see Fig. 11).
  for (const std::size_t m : {8u, 16u}) {
    QuadraticModel model =
        QuadraticModel::synthesize(128, 4 * m, m, rng, 0.7, 0.15);
    const GroupFisher fisher = model.fisher();
    const double norm = model.normalizer();
    const double sparsity = (1.0 - 2.0 / double(m)) * 100.0;

    std::printf("\n%.1f%% sparsity (2:%zu)\n", sparsity, m);
    bench::header({"format", "dLoss/norm", "retention"});
    const auto report = [&](const char* label, const FloatMatrix& w) {
      const double dl = model.loss(w) / norm;
      bench::cell(label);
      bench::cell(dl, "%.4f");
      bench::cell(1.0 - dl, "%.4f");
      bench::endrow();
    };

    report("1:N:M", obs_prune_vnm(model.optimum(), fisher, {1, 2, m},
                                  SelectionMode::kAuto)
                        .weights);
    report("64:N:M", obs_prune_vnm(model.optimum(), fisher, {64, 2, m},
                                   SelectionMode::kAuto)
                         .weights);
    report("128:N:M", obs_prune_vnm(model.optimum(), fisher, {128, 2, m},
                                    SelectionMode::kAuto)
                          .weights);
    report("vw_8", obs_prune_vector_wise(model.optimum(), fisher, 8,
                                         1.0 - 2.0 / double(m))
                       .weights);
  }

  // Companion ablation: one-shot vs the structure-decay scheduler
  // (Section 6.1.1) at the 2:16 target, on a non-quadratic loss with
  // masked fine-tuning after every stage. NOTE (also in EXPERIMENTS.md):
  // on a convex substrate one-shot OBS with exact curvature is optimal
  // by construction, so the scheduler can only MATCH it here (within a
  // few percent). The paper's accuracy benefit of gradual decay arises
  // from non-convex re-training dynamics the substitution cannot model;
  // this bench verifies the scheduler machinery and its cost, not a win.
  std::printf("\nStructure-decay scheduler ablation (2:16 target,\n"
              "non-quadratic loss, fine-tuning after every stage):\n");
  bench::header({"schedule", "dLoss/norm"});
  NonQuadraticModel model(
      QuadraticModel::synthesize(64, 64, 16, rng, 0.8), /*kappa=*/1.0);
  const GroupFisher fisher = model.fisher();
  const double norm = model.normalizer();
  const VnmConfig target{64, 2, 16};
  {
    FloatMatrix w = obs_prune_vnm(model.optimum(), fisher, target,
                                  SelectionMode::kAuto)
                        .weights;
    const double l = fine_tune(model, w, 200);
    bench::cell("one-shot");
    bench::cell(l / norm, "%.4f");
    bench::endrow();
  }
  for (std::size_t steps : {2u, 3u}) {
    const DecaySchedule sched = structure_decay_schedule(8, 2, steps);
    FloatMatrix w = model.optimum();
    double l = 0.0;
    for (std::size_t i = 0; i < sched.n_values.size(); ++i) {
      const std::size_t n = sched.n_values[i];
      const bool final_step = i + 1 == sched.n_values.size();
      w = final_step
              ? obs_prune_vnm(w, fisher, target, SelectionMode::kAuto).weights
              : obs_prune_nm(w, fisher, NmPattern{n, 16},
                             SelectionMode::kAuto)
                    .weights;
      l = fine_tune(model, w, 200);
    }
    std::string label = "decay(";
    for (std::size_t n : sched.n_values) label += std::to_string(n) + ",";
    label.back() = ')';
    bench::cell(label);
    bench::cell(l / norm, "%.4f");
    bench::endrow();
  }

  std::printf(
      "\nExpected shape (paper): degradation grows with the V constraint\n"
      "(1:N:M best, then 64:N:M, then 128:N:M) and is larger at 2:16 than\n"
      "at 2:8 — both reproduced above. Two known substitution gaps (see\n"
      "EXPERIMENTS.md): vw_8 ranks last here but second in the paper, and\n"
      "gradual decay only matches one-shot — both effects come from\n"
      "non-convex fine-tuning dynamics a convex substrate cannot show.\n");
  return 0;
}
