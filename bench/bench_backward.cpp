// Backward-pass kernel throughput: the transposed SpMM (input gradient)
// and the masked SDDMM (weight gradient) against their scalar oracles,
// plus a whole sparse Linear::backward step. Results merge into
// BENCH_kernels.json next to the forward records.
//
// Measurement discipline: each fast/oracle pair is interleaved
// (oracle -> fast -> oracle -> fast, medians of the pairs) so drift on a
// busy single-core machine cancels out of the reported speedups.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ops/ops.hpp"
#include "pruning/policies.hpp"
#include "spatha/sddmm.hpp"
#include "spatha/spmm.hpp"
#include "transformer/linear.hpp"

namespace {

using namespace venom;

constexpr std::size_t kR = 256;   // weight rows (output features)
constexpr std::size_t kK = 512;   // weight cols (input features)
constexpr std::size_t kC = 128;   // tokens
constexpr int kPairs = 5;         // interleaved A/B samples per record

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Interleaves two timed closures and returns their median
/// seconds-per-call (baseline first, matching the perf gate's argument
/// order convention).
template <typename Base, typename Fast>
std::pair<double, double> interleaved(Base&& base, Fast&& fast) {
  std::vector<double> base_s, fast_s;
  for (int i = 0; i < kPairs; ++i) {
    base_s.push_back(bench::seconds_per_call(base, 0.05));
    fast_s.push_back(bench::seconds_per_call(fast, 0.05));
  }
  return {median(base_s), median(fast_s)};
}

}  // namespace

int main() {
  bench::banner("Backward-pass kernels",
                "transposed SpMM + masked SDDMM vs scalar oracles, "
                "sparse Linear::backward");
  std::vector<bench::JsonRecord> records;
  Rng rng = Rng::seeded("bench-backward");
  const HalfMatrix w =
      pruning::synthetic_bert_weight(kR, kK, rng, 0.15, 4.0f, 0.05f);
  const HalfMatrix grad_y = random_half_matrix(kR, kC, rng, 0.05f);
  const HalfMatrix x = random_half_matrix(kK, kC, rng, 0.5f);
  const HalfMatrix xt = transpose(x);

  bench::header({"kernel", "vnm", "GFLOP/s", "oracle", "speedup"});
  for (const VnmConfig fmt : {VnmConfig{64, 2, 8}, VnmConfig{128, 2, 16}}) {
    const VnmMatrix a = VnmMatrix::from_dense_magnitude(w, fmt);
    const std::string shape = std::to_string(kR) + "x" + std::to_string(kK) +
                              "x" + std::to_string(kC) + " " +
                              std::to_string(fmt.v) + ":" +
                              std::to_string(fmt.n) + ":" +
                              std::to_string(fmt.m);

    // dL/dx = W^T dL/dy.
    {
      const double flops = spatha::spmm_flops(a, kC);
      const auto [base_s, fast_s] = interleaved(
          [&] { return spatha::spmm_vnm_transposed_scalar(a, grad_y); },
          [&] {
            return ops::matmul_transposed(
                ops::MatmulArgs::make_transposed(a, grad_y));
          });
      bench::cell("spmm_vnm_t");
      bench::cell(std::to_string(fmt.v) + ":" + std::to_string(fmt.n) + ":" +
                  std::to_string(fmt.m));
      bench::cell(flops / fast_s / 1e9);
      bench::cell(flops / base_s / 1e9);
      bench::cell(base_s / fast_s, "%.2fx");
      bench::endrow();
      records.push_back({"spmm_vnm_t", shape, flops / fast_s / 1e9,
                         base_s / fast_s, "gflops"});
    }

    // dL/dW = (dL/dy x^T) masked to the pattern.
    {
      const double flops = spatha::sddmm_flops(a, kC);
      const auto [base_s, fast_s] = interleaved(
          [&] { return spatha::sddmm_vnm_scalar(a, grad_y, xt); },
          [&] {
            return ops::sddmm(ops::MatmulArgs::make_sddmm(a, grad_y, xt));
          });
      bench::cell("sddmm_vnm");
      bench::cell(std::to_string(fmt.v) + ":" + std::to_string(fmt.n) + ":" +
                  std::to_string(fmt.m));
      bench::cell(flops / fast_s / 1e9);
      bench::cell(flops / base_s / 1e9);
      bench::cell(base_s / fast_s, "%.2fx");
      bench::endrow();
      records.push_back({"sddmm_vnm", shape, flops / fast_s / 1e9,
                         base_s / fast_s, "gflops"});
    }
  }

  // A whole sparse backward step (input + weight + bias gradients)
  // through the layer the fine-tune loop drives.
  {
    transformer::Linear layer(w, std::vector<float>(kR, 0.0f));
    layer.sparsify({64, 2, 8});
    FloatMatrix gy(kR, kC);
    Rng gy_rng = Rng::seeded("bench-backward-grad");
    for (std::size_t i = 0; i < gy.size(); ++i)
      gy.flat()[i] = 0.05f * gy_rng.normal();
    const double s = bench::seconds_per_call(
        [&] { return layer.backward(x, gy); }, 0.2);
    std::printf("\nlinear backward (sparse 64:2:8): %.3f ms per step\n",
                s * 1e3);
    records.push_back({"linear_backward_sparse",
                       std::to_string(kR) + "x" + std::to_string(kK) + "x" +
                           std::to_string(kC) + " 64:2:8",
                       s * 1e3, 1.0, "ms"});
  }

  bench::merge_bench_json("BENCH_kernels.json", records);
  std::printf("\nmerged %zu records into BENCH_kernels.json\n",
              records.size());
  return 0;
}
