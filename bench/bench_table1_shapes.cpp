// Regenerates Table 1: matrix shapes supported by mma.sp on SPTCs, and
// demonstrates the simulator executes each supported fp16/fp32 shape.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sptc/metadata.hpp"
#include "sptc/mma.hpp"
#include "sptc/shapes.hpp"

using namespace venom;
using namespace venom::sptc;

int main() {
  bench::banner("Table 1 — Matrix shapes for mma.sp on SPTCs",
                "M and N dimensions fixed to 16 and 8 (m16n8)");
  bench::header({"precision", "format", "shapes"});
  for (const auto& s : mma_shape_table()) {
    bench::cell(to_string(s.precision));
    bench::cell(std::to_string(s.pattern_n) + ":" +
                std::to_string(s.pattern_m));
    std::string shapes;
    for (std::size_t k : s.supported_k) shapes += "k" + std::to_string(k) + " ";
    bench::cell(shapes);
    bench::endrow();
  }

  // Execute one mma.sp per fp shape family to show the simulator accepts
  // exactly the Table-1 configurations.
  std::printf("\nSimulator smoke execution:\n");
  Rng rng(1);
  for (std::size_t k : shape_for(Precision::kFp16).supported_k) {
    std::vector<half_t> a(16 * k / 2, half_t(1.0f)), b(k * 8, half_t(1.0f));
    std::vector<std::uint8_t> idx(16 * k / 2);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = (i % 2) * 2;
    std::vector<float> c(16 * 8, 0.0f);
    mma_sp_fp16(k, a, pack_metadata(idx), b, c);
    std::printf("  half  %s -> C[0][0] = %.0f (expect %zu)\n",
                shape_for(Precision::kFp16).name(k).c_str(), double(c[0]),
                k / 2);
  }
  for (std::size_t k : shape_for(Precision::kFp32).supported_k) {
    std::vector<float> a(16 * k / 2, 1.0f), b(k * 8, 1.0f), c(16 * 8, 0.0f);
    std::vector<std::uint8_t> idx(16 * k / 2, 0);
    mma_sp_fp32(k, a, pack_metadata(idx), b, c);
    std::printf("  fp32  %s -> C[0][0] = %.0f (expect %zu)\n",
                shape_for(Precision::kFp32).name(k).c_str(), double(c[0]),
                k / 2);
  }
  for (std::size_t k : shape_for(Precision::kUint8).supported_k) {
    std::vector<std::uint8_t> a(16 * k / 2, 1), b(k * 8, 1);
    std::vector<std::uint8_t> idx(16 * k / 2);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = (i % 2) * 2;
    std::vector<std::int32_t> c(16 * 8, 0);
    mma_sp_u8(k, a, pack_metadata(idx), b, c);
    std::printf("  uint8 %s -> C[0][0] = %d (expect %zu)\n",
                shape_for(Precision::kUint8).name(k).c_str(), c[0], k / 2);
  }
  return 0;
}
