// Regenerates Fig. 9: ablation of the column-loc structure on a BERT-large
// linear-layer GEMM (1024 x K x 4096), V = 128, N:M in {2:10 .. 2:100},
// K swept from 768 to 12288. Reports modeled speedup over cuBLAS with and
// without column-loc (fixed selectors), plus the theoretical cap M/2.
//
// Functional correctness of both kernel paths is verified inline on a
// scaled-down instance before the sweep (the real CPU kernels run there).
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "gpumodel/kernel_models.hpp"
#include "ops/ops.hpp"
#include "tensor/matrix.hpp"

using namespace venom;
using namespace venom::gpumodel;

namespace {

void verify_kernels() {
  // Down-scaled instance of the Fig. 9 workload exercising the actual
  // Spatha kernel (with column-loc gather) against the dense oracle.
  Rng rng(99);
  const VnmConfig fmt{128, 2, 10};
  const HalfMatrix dense = random_half_matrix(256, 640, rng, 0.05f);
  const VnmMatrix a = VnmMatrix::from_dense_magnitude(dense, fmt);
  const HalfMatrix b = random_half_matrix(640, 64, rng, 0.05f);
  const HalfMatrix a_dense = a.to_dense();
  const float err =
      rel_fro_error(ops::matmul(ops::MatmulArgs::make(a, b)),
                    ops::matmul(ops::MatmulArgs::make(a_dense, b)));
  std::printf("kernel verification (256x640x64, 128:2:10): rel err = %.2e %s\n",
              double(err), err < 1e-5f ? "[ok]" : "[FAIL]");
}

}  // namespace

int main() {
  bench::banner(
      "Figure 9 — column-loc ablation (BERT-large layer, 1024 x K x 4096)",
      "speedup w.r.t. cuBLAS; V = 128; modeled RTX 3090 (DESIGN.md #2)");
  verify_kernels();

  const DeviceSpec& dev = rtx3090();
  const std::size_t ks[] = {768,  1536, 2304, 3072, 3840,  4608,  5376,
                            6144, 6912, 7680, 8448, 9216,  9984,  10752,
                            11520, 12288};
  const std::size_t ms[] = {10, 20, 40, 100};

  for (std::size_t m : ms) {
    const VnmConfig fmt{128, 2, m};
    std::printf("\n%.0f%% sparsity [128:2:%zu]  (theoretical cap %.0fx)\n",
                fmt.sparsity() * 100.0, m, double(m) / 2.0);
    bench::header({"K", "w/ cloc", "w/o cloc", "overhead%"});
    for (std::size_t k : ks) {
      if (k % m != 0 && m == 100 && k % 100 != 0) {
        // K must divide M for the format; the paper's K grid is in steps
        // of 768 — round down to the nearest multiple of M.
      }
      const std::size_t kk = k - k % m;
      const GemmShape g{1024, kk, 4096};
      auto cfg = spatha::select_config(fmt, g.r, g.k, g.c);
      const double with =
          speedup_vs_cublas(dev, g, spatha_spmm(dev, g, fmt, cfg));
      cfg.column_loc = spatha::ColumnLocMode::kFixed;
      const double without =
          speedup_vs_cublas(dev, g, spatha_spmm(dev, g, fmt, cfg));
      bench::cell(double(k), "%.0f");
      bench::cell(with);
      bench::cell(without);
      bench::cell(100.0 * (without - with) / without, "%.1f");
      bench::endrow();
    }
  }
  std::printf(
      "\nExpected shape (paper): speedups approach the cap as K grows —\n"
      "~4.5x @80%%, ~8.5x @90%%, ~17.5x @95%%, ~37x @98%% at K=12288; the\n"
      "column-loc overhead is negligible except slightly visible at 2:100.\n");
  return 0;
}
