// Regenerates Fig. 10: impact of the vector length V and of the 32- vs
// 128-bit shared-memory output stores on a BERT-large GEMM
// (1024 x 4096 x 4096), across V:2:M configurations, plus the GPT-3-sized
// GEMM (36864 x 12288 x 4096) where the paper notes the store-width
// effect is attenuated.
#include <cstdio>

#include "bench_util.hpp"
#include "gpumodel/kernel_models.hpp"

using namespace venom;
using namespace venom::gpumodel;

namespace {

void sweep(const DeviceSpec& dev, GemmShape g) {
  const std::size_t ms[] = {7, 8, 10, 20, 40, 100};
  for (std::size_t m : ms) {
    const VnmConfig base{128, 2, m};
    std::printf("\n%.0f%% sparsity [V:2:%zu]\n", base.sparsity() * 100.0, m);
    bench::header({"V", "32-bit", "128-bit", "ratio"});
    for (std::size_t v : {32u, 64u, 128u}) {
      const VnmConfig fmt{v, 2, m};
      const std::size_t k = g.k - g.k % m;
      const GemmShape gg{g.r, k, g.c};
      auto cfg = spatha::select_config(fmt, gg.r, gg.k, gg.c);
      cfg.store_width = spatha::StoreWidth::k32bit;
      const double s32 =
          speedup_vs_cublas(dev, gg, spatha_spmm(dev, gg, fmt, cfg));
      cfg.store_width = spatha::StoreWidth::k128bit;
      const double s128 =
          speedup_vs_cublas(dev, gg, spatha_spmm(dev, gg, fmt, cfg));
      bench::cell(double(v), "%.0f");
      bench::cell(s32);
      bench::cell(s128);
      bench::cell(s128 / s32);
      bench::endrow();
    }
  }
}

}  // namespace

int main() {
  const DeviceSpec& dev = rtx3090();

  bench::banner(
      "Figure 10 — V scaling and wide SMEM stores (1024 x 4096 x 4096)",
      "speedup w.r.t. cuBLAS; modeled RTX 3090 (DESIGN.md #2)");
  sweep(dev, {1024, 4096, 4096});

  bench::banner(
      "Figure 10 (companion) — GPT-3 sized GEMM (36864 x 12288 x 4096)",
      "store-width effect attenuated: output phase is a smaller share");
  sweep(dev, {36864, 12288, 4096});

  std::printf(
      "\nExpected shape (paper): larger V is consistently faster; 128-bit\n"
      "stores bring up to ~2x at the BERT-large size, less on GPT-3.\n");
  return 0;
}
