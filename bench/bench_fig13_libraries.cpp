// Regenerates Fig. 13: speedup over cuBLAS of Spatha, cuSparseLt,
// Sputnik, and CLASP on BERT-base and BERT-large linear layers
// (sequence length 512, batch 8 and 16) across sparsity levels
// 50/70/75/80/90/95/98%. The N:M per level follows the paper:
// 2:4, 2:7, 2:8, 2:10, 2:20, 2:40, 2:100.
#include <cstdio>

#include "bench_util.hpp"
#include "gpumodel/kernel_models.hpp"

using namespace venom;
using namespace venom::gpumodel;

namespace {

struct Level {
  int pct;
  std::size_t n, m;
};
const Level kLevels[] = {{50, 2, 4},  {70, 2, 7},  {75, 2, 8}, {80, 2, 10},
                         {90, 2, 20}, {95, 2, 40}, {98, 2, 100}};

void panel(const DeviceSpec& dev, const char* model, std::size_t hidden,
           std::size_t batch, std::size_t v, std::size_t vw) {
  // The pruned weight is the FFN-out projection (hidden x 4*hidden) — the
  // largest-K layer in BERT, where sparse kernels shine; activations have
  // seq*batch columns (paper: weight linear layers, seq len 512).
  const GemmShape g{hidden, 4 * hidden, 512 * batch};
  std::printf("\n%s, batch=%zu  [%zu:N:M vs vw_%zu]  (GEMM %zux%zux%zu)\n",
              model, batch, v, vw, g.r, g.k, g.c);
  bench::header({"sparsity%", "cuBLAS", "Spatha", "cuSpLt", "Sputnik",
                 "CLASP"});
  for (const Level& lv : kLevels) {
    const double density = double(lv.n) / double(lv.m);
    bench::cell(double(lv.pct), "%.0f");
    bench::cell(1.0);
    bench::cell(speedup_vs_cublas(
        dev, g, spatha_spmm(dev, g, VnmConfig{v, lv.n, lv.m})));
    if (lv.m == 4) {
      bench::cell(speedup_vs_cublas(dev, g, cusparselt_spmm(dev, g)));
    } else {
      bench::cell("n/a");  // cuSparseLt only supports 2:4
    }
    bench::cell(speedup_vs_cublas(dev, g, sputnik_spmm(dev, g, density)));
    bench::cell(speedup_vs_cublas(dev, g, clasp_spmm(dev, g, density, vw)));
    bench::endrow();
  }
}

}  // namespace

int main() {
  bench::banner(
      "Figure 13 — speedups on BERT-base / BERT-large, seq len 512",
      "speedup w.r.t. cuBLAS (log-scale in the paper); modeled RTX 3090");
  const DeviceSpec& dev = rtx3090();
  // Top row: BERT-base; bottom: BERT-large. Columns: (bs, V:N:M, vw_l).
  panel(dev, "BERT-base", 768, 8, 64, 4);
  panel(dev, "BERT-base", 768, 16, 64, 4);
  panel(dev, "BERT-base", 768, 8, 128, 8);
  panel(dev, "BERT-base", 768, 16, 128, 8);
  panel(dev, "BERT-large", 1024, 8, 64, 4);
  panel(dev, "BERT-large", 1024, 16, 64, 4);
  panel(dev, "BERT-large", 1024, 8, 128, 8);
  panel(dev, "BERT-large", 1024, 16, 128, 8);
  std::printf(
      "\nExpected shape (paper): Sputnik/CLASP beat cuBLAS only at >= 90%%\n"
      "sparsity and cap around ~3x; Spatha reaches ~2x already at 50%% and\n"
      "grows to >25x at 98%%, peaking for BERT-large with batch 16.\n");
  return 0;
}
