// Robustness bench (beyond the paper's figures): how each kernel family
// behaves across sparse-matrix *structures*, not just sparsity levels.
//
// Section 3 argues DL sparsity differs from scientific sparsity in
// density, nonzeros-per-row, and load balance, and that N:M's regularity
// is what keeps SPTC kernels immune to imbalance. This bench makes that
// argument executable: it generates unstructured / banded / power-law /
// block workloads at a fixed density, measures their row imbalance, prunes
// each to V:N:M, and reports the real CPU kernel times of the CSR kernel
// (imbalance-sensitive) vs Spatha (imbalance-free by construction),
// plus the V:N:M approximation quality per structure.
#include <chrono>
#include <cstdio>

#include <functional>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "format/csr.hpp"
#include "format/vnm.hpp"
#include "ops/ops.hpp"
#include "pruning/policies.hpp"
#include "workloads/generators.hpp"

using namespace venom;
using namespace venom::workloads;

namespace {

double time_of(const std::function<void()>& fn, int reps = 3) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("Robustness across sparse structures (CPU kernels, real "
                "wall time)",
                "512x1024 operand at ~20% density x 1024x64 activations");
  Rng rng(77);
  const std::size_t rows = 512, cols = 1024, bcols = 64;
  const HalfMatrix b = random_half_matrix(cols, bcols, rng, 0.1f);

  struct Workload {
    const char* name;
    HalfMatrix a;
  };
  const Workload loads[] = {
      {"uniform", uniform_sparse(rows, cols, 0.2, rng)},
      {"banded", banded(rows, cols, 200, rng)},
      {"powerlaw", power_law_rows(rows, cols, 0.2, 1.0, rng)},
      {"block16", block_structured(rows, cols, 16, 0.2, rng)},
  };

  bench::header({"structure", "imbalance", "csr(ms)", "spatha(ms)",
                 "vnm-energy"});
  const VnmConfig cfg{64, 2, 8};  // 75% V:N:M (M divides 1024)
  for (const Workload& w : loads) {
    const CsrMatrix csr = CsrMatrix::from_dense(w.a);
    const VnmMatrix vnm = VnmMatrix::from_dense_magnitude(w.a, cfg);

    // Both products go through ops dispatch: the format alone routes
    // each to its kernel family (csr vs vnm-fast).
    const double t_csr =
        time_of([&] { ops::matmul(ops::MatmulArgs::make(csr, b)); });
    const double t_spatha =
        time_of([&] { ops::matmul(ops::MatmulArgs::make(vnm, b)); });

    bench::cell(w.name);
    bench::cell(row_imbalance(w.a), "%.3f");
    bench::cell(t_csr * 1e3, "%.2f");
    bench::cell(t_spatha * 1e3, "%.2f");
    bench::cell(pruning::energy(vnm.to_dense(), w.a), "%.3f");
    bench::endrow();
  }
  std::printf(
      "\nReading: the CSR kernel's cost follows each structure's nnz and\n"
      "row distribution, while V:N:M fixes nonzeros per row by\n"
      "construction, so Spatha's work is uniform regardless of the input\n"
      "structure (the paper's §3 load-balance argument). vnm-energy shows\n"
      "which structures the format approximates best (element-granular\n"
      "ones) and worst (wide bands / dense blocks that exceed the\n"
      "4-columns-per-block budget).\n");
  return 0;
}
