#!/usr/bin/env python3
"""Run clang-tidy over the repo's translation units, in parallel.

The check set lives in .clang-tidy at the repo root; this runner only
decides *what* to analyze (src/, tools/, bench/ sources present in
compile_commands.json), fans the files out over CPUs, and folds the
diagnostics into one report.

Usage:
    cmake -B build -S .              # exports build/compile_commands.json
    python3 scripts/run_clang_tidy.py [--build-dir build] [--jobs N]
                                      [--report FILE] [paths...]

Exit status: 0 when clang-tidy is clean, 1 when any file has findings
(the report file then holds every diagnostic — CI uploads it as an
artifact), 2 on usage/environment errors.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

ANALYZED_DIRS = ("src", "tools", "bench")


def find_clang_tidy() -> str | None:
    """The newest clang-tidy on PATH (plain name first, then versioned)."""
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(25, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def compile_db_files(build_dir: Path, repo: Path, wanted: list[str]) -> list[Path]:
    """Translation units from compile_commands.json under the wanted dirs."""
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        sys.exit(
            f"error: {db_path} not found — configure first "
            "(cmake -B build -S . exports it)"
        )
    entries = json.loads(db_path.read_text())
    files: set[Path] = set()
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = (Path(entry["directory"]) / src).resolve()
        try:
            rel = src.relative_to(repo)
        except ValueError:
            continue  # outside the repo (system or generated sources)
        if rel.parts and rel.parts[0] in wanted:
            files.add(src)
    return sorted(files)


def run_one(clang_tidy: str, build_dir: Path, src: Path) -> tuple[Path, int, str]:
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", str(src)],
        capture_output=True,
        text=True,
    )
    # --quiet still prints a suppression summary on stderr; diagnostics go
    # to stdout. Keep stderr only for hard failures (bad flags, crashes).
    output = proc.stdout.strip()
    if proc.returncode != 0 and not output:
        output = proc.stderr.strip()
    return src, proc.returncode, output


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build", type=Path)
    parser.add_argument(
        "--jobs", "-j", type=int, default=multiprocessing.cpu_count()
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=Path("clang-tidy-report.txt"),
        help="diagnostics are collected here (CI failure artifact)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(ANALYZED_DIRS),
        help=f"top-level dirs to analyze (default: {' '.join(ANALYZED_DIRS)})",
    )
    args = parser.parse_args()

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("error: no clang-tidy on PATH", file=sys.stderr)
        return 2

    repo = Path(__file__).resolve().parent.parent
    build_dir = args.build_dir.resolve()
    files = compile_db_files(build_dir, repo, args.paths)
    if not files:
        print("error: no translation units matched", file=sys.stderr)
        return 2

    print(f"{clang_tidy}: {len(files)} files, {args.jobs} jobs")
    failures: list[tuple[Path, str]] = []
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for src, code, output in pool.map(
            lambda f: run_one(clang_tidy, build_dir, f), files
        ):
            rel = src.relative_to(repo)
            if code != 0:
                failures.append((rel, output))
                print(f"FAIL {rel}")
            else:
                print(f"  ok {rel}")

    if failures:
        report = [f"clang-tidy: {len(failures)} of {len(files)} files failed\n"]
        for rel, output in failures:
            report.append(f"==== {rel} ====\n{output}\n")
        args.report.write_text("\n".join(report))
        print(f"\n{len(failures)} files with findings — see {args.report}")
        return 1

    print("clang-tidy clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
