#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_kernels.json.

Compares a freshly produced BENCH_kernels.json against the committed
baseline (bench/baseline_kernels.json) record by record, keyed on
(name, shape). Two metrics are gated per record:

  * the measured value (the "gflops" field — GFLOP/s, req/s, or ms
    depending on the record's "unit"): for throughput units a DROP
    beyond the tolerance fails; for latency units ("ms") a RISE beyond
    the tolerance fails. Absolute numbers vary with the runner, so the
    tolerance is env-overridable: VENOM_PERF_TOLERANCE (percent,
    default 20), and latency rows — wall-clock, the most
    runner-sensitive — get their own VENOM_PERF_LATENCY_TOLERANCE
    (percent, defaults to VENOM_PERF_TOLERANCE).
  * speedup_vs_seed, when the baseline records one != 1.0: this is a
    same-machine ratio (fast kernel vs seed scalar, batched serving vs
    sequential loop), far more runner-stable than absolute numbers, so
    it gets its own VENOM_PERF_RATIO_TOLERANCE (percent, defaults to
    VENOM_PERF_TOLERANCE) — keep it strict even when the absolute
    tolerance is widened for hosted runners, or the ratio check stops
    catching real same-run regressions.

A baseline record missing from the fresh file fails the gate (a bench
that silently stopped emitting is a regression too). Fresh records not
in the baseline are reported but never fail.

Usage: check_perf_regression.py <baseline.json> <fresh.json>
"""

import json
import os
import sys

LATENCY_UNITS = {"ms", "us", "s"}


def load_records(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    return {(r["name"], r["shape"]): r for r in data}


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load_records(sys.argv[1])
    fresh = load_records(sys.argv[2])
    tolerance = float(os.environ.get("VENOM_PERF_TOLERANCE", "20")) / 100.0
    latency_tolerance = float(
        os.environ.get("VENOM_PERF_LATENCY_TOLERANCE",
                       str(tolerance * 100))) / 100.0
    ratio_tolerance = float(
        os.environ.get("VENOM_PERF_RATIO_TOLERANCE",
                       str(tolerance * 100))) / 100.0

    failures = []
    print(f"perf gate: {len(baseline)} baseline records, tolerance "
          f"{tolerance:.0%} (latency {latency_tolerance:.0%}, ratios "
          f"{ratio_tolerance:.0%}; VENOM_PERF_*_TOLERANCE to override)")
    for key, base in sorted(baseline.items()):
        name, shape = key
        label = f"{name} [{shape}]"
        if key not in fresh:
            failures.append(f"{label}: missing from fresh results")
            continue
        cur = fresh[key]
        unit = base.get("unit", "gflops")
        base_val, cur_val = base["gflops"], cur["gflops"]
        if base_val > 0:
            if unit in LATENCY_UNITS:
                worse = (cur_val - base_val) / base_val  # higher ms = worse
                tol = latency_tolerance
            else:
                worse = (base_val - cur_val) / base_val  # lower thpt = worse
                tol = tolerance
            status = "OK" if worse <= tol else "REGRESSION"
            print(f"  {status:10s} {label}: {cur_val:.3f} {unit} "
                  f"(baseline {base_val:.3f}, {-worse:+.1%})")
            if worse > tol:
                failures.append(
                    f"{label}: {cur_val:.3f} {unit} vs baseline "
                    f"{base_val:.3f} ({-worse:+.1%} beyond -{tol:.0%})")
        base_speedup = base.get("speedup_vs_seed", 1.0)
        if base_speedup > 1.0:
            cur_speedup = cur.get("speedup_vs_seed", 1.0)
            worse = (base_speedup - cur_speedup) / base_speedup
            status = "OK" if worse <= ratio_tolerance else "REGRESSION"
            print(f"  {status:10s} {label}: speedup {cur_speedup:.2f}x "
                  f"(baseline {base_speedup:.2f}x, {-worse:+.1%})")
            if worse > ratio_tolerance:
                failures.append(
                    f"{label}: speedup {cur_speedup:.2f}x vs baseline "
                    f"{base_speedup:.2f}x ({-worse:+.1%} beyond "
                    f"-{ratio_tolerance:.0%})")

    extra = sorted(set(fresh) - set(baseline))
    for name, shape in extra:
        print(f"  NEW        {name} [{shape}] (not gated)")

    if failures:
        print(f"\nperf gate FAILED ({len(failures)}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
